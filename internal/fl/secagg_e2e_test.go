package fl

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// TestSecAggSessionMatchesPlaintext: the same weighted fleet run under
// plaintext FedAvg and under masked secure aggregation must land on
// bit-identical models — masks cancel in the ring, and the dyadic
// updates survive fixed-point quantisation exactly.
func TestSecAggSessionMatchesPlaintext(t *testing.T) {
	build := func() []*testTrainer {
		small := newTestTrainer("small", false, 2)
		small.examples = 1
		big := newTestTrainer("big", false, 6)
		big.examples = 3
		return []*testTrainer{small, big}
	}

	plainState := newState(1, 10)
	plainSrv := NewServer(plainState, ServerConfig{Rounds: 3})
	if _, err := runSession(t, plainSrv, build()); err != nil {
		t.Fatal(err)
	}

	maskedState := newState(1, 10)
	maskedSrv := NewServer(maskedState, ServerConfig{Rounds: 3, SecAgg: true})
	clients, err := runSession(t, maskedSrv, build())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range clients {
		if !c.SecAgg {
			t.Fatalf("client %d did not negotiate secure aggregation", i)
		}
	}

	for i := range plainState {
		for j := range plainState[i].Data {
			if plainState[i].Data[j] != maskedState[i].Data[j] {
				t.Fatalf("tensor %d elem %d: plaintext %v != masked %v",
					i, j, plainState[i].Data[j], maskedState[i].Data[j])
			}
		}
	}
	for r, st := range maskedSrv.Trace() {
		want := plainSrv.Trace()[r]
		if st.Responded != want.Responded || st.WeightTotal != want.WeightTotal {
			t.Fatalf("round %d stats diverged: plaintext %+v, masked %+v", r, want, st)
		}
		if st.Reconciled != 0 {
			t.Fatalf("full cohort must need no reconciliation: %+v", st)
		}
	}
}

// TestSecAggStragglerReconciliation: a straggler is dropped at the
// deadline; the survivor reveals the pair's round seed, the unpaired
// mask is subtracted, and the round closes on exactly the survivor's
// update. The straggler stays eligible and both answer the next round.
func TestSecAggStragglerReconciliation(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	events := make(chan engineEvent, 64)
	fast := newTestTrainer("fast", false, 2)
	slow := newGateTrainer("slow", 4, 0)
	state := newState(0)
	srv := NewServer(state, ServerConfig{
		Rounds: 2, MinClients: 1, RoundDeadline: time.Second, Clock: clk,
		SecAgg: true, Hooks: eventHooks(events),
	})
	serverErr, clients, _, wg := startSession(srv, []Trainer{fast, slow})

	waitEvent(t, events, "folded")
	clk.Advance(time.Second)
	closed := waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Dropped != 1 {
		t.Fatalf("round 0 stats = %+v", closed.stats)
	}
	if closed.stats.Reconciled != 1 {
		t.Fatalf("round 0 reconciled %d masks, want 1", closed.stats.Reconciled)
	}

	waitEvent(t, events, "started")
	slow.release(0)
	closed = waitEvent(t, events, "closed")
	if closed.stats.Responded != 2 || closed.stats.Reconciled != 0 {
		t.Fatalf("round 1 stats = %+v", closed.stats)
	}
	if closed.stats.LateDiscarded != 1 {
		t.Fatalf("round 1 discarded %d late updates, want 1", closed.stats.LateDiscarded)
	}

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Round 0 applied only fast's +2; round 1 applied mean(2,4) = +3.
	if got := state[0].Data[0]; got != 5 {
		t.Fatalf("state = %v, want 5", got)
	}
	if clients[1].Rounds != 2 {
		t.Fatalf("straggler completed %d rounds, want 2", clients[1].Rounds)
	}
}

// TestSecAggEnclaveProtectedSession: with a protection plan, sealed
// updates are folded inside the aggregation enclave and the final model
// still matches a plaintext TEE session bit for bit.
func TestSecAggEnclaveProtectedSession(t *testing.T) {
	build := func() []*testTrainer {
		return []*testTrainer{
			newTestTrainer("tee-a", true, 2),
			newTestTrainer("tee-b", true, 6),
		}
	}

	plainState := newState(5, 50)
	plainTr := build()
	plainSrv := NewServer(plainState, ServerConfig{
		Rounds: 2, RequireTEE: true, Verifier: setupVerifier(plainTr...),
		Planner: staticPlanner{0: true},
	})
	if _, err := runSession(t, plainSrv, plainTr); err != nil {
		t.Fatal(err)
	}

	enclave, err := secagg.NewEnclave("aggregator")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()
	secState := newState(5, 50)
	secTr := build()
	secSrv := NewServer(secState, ServerConfig{
		Rounds: 2, RequireTEE: true, Verifier: setupVerifier(secTr...),
		Planner: staticPlanner{0: true}, SecAgg: true, Enclave: enclave,
	})
	if _, err := runSession(t, secSrv, secTr); err != nil {
		t.Fatal(err)
	}

	for i := range plainState {
		for j := range plainState[i].Data {
			if plainState[i].Data[j] != secState[i].Data[j] {
				t.Fatalf("tensor %d elem %d: plaintext %v != enclave %v",
					i, j, plainState[i].Data[j], secState[i].Data[j])
			}
		}
	}
	// The protection split must have reached the clients through the
	// enclave-sealed path.
	for _, tr := range secTr {
		if !tr.sawNilAt[0] || tr.sawNilAt[1] {
			t.Fatalf("protection split wrong: %v", tr.sawNilAt)
		}
		if len(tr.openedBlobs) != 2 {
			t.Fatalf("opened %d sealed payloads, want 2", len(tr.openedBlobs))
		}
	}
	if enclave.Device().SMCCount() == 0 {
		t.Fatal("enclave saw no world switches — sealed path bypassed it")
	}
	if got := enclave.Device().SecureMemory().InUse(); got != 0 {
		t.Fatalf("enclave leaked %d bytes of secure memory", got)
	}
}

// TestSecAggClientVerifiesEnclaveQuote: a client configured with an
// enclave verifier accepts a provisioned aggregator and refuses an
// unprovisioned one.
func TestSecAggClientVerifiesEnclaveQuote(t *testing.T) {
	enclave, err := secagg.NewEnclave("attested-agg")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()

	run := func(provision bool) (clientErr error, serverErr error) {
		v := tz.NewVerifier()
		if provision {
			v.RegisterDevice(enclave.Device().Identity().ID(), enclave.Device().Identity().RootKey())
			m, err := enclave.Measurement()
			if err != nil {
				t.Fatal(err)
			}
			v.AllowMeasurement(m)
		}
		tr := newTestTrainer("tee", true, 2)
		srv := NewServer(newState(0), ServerConfig{
			Rounds: 1, SecAgg: true, Enclave: enclave,
			RequireTEE: true, Verifier: setupVerifier(tr),
		})
		sc, cc := Pipe()
		client := NewClient(cc, tr)
		client.EnclaveVerifier = v
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cc.Close() // a refusing client must release the transport
			clientErr = client.Run()
		}()
		_, serverErr = srv.Run([]Conn{sc})
		wg.Wait()
		return clientErr, serverErr
	}

	if cErr, sErr := run(true); cErr != nil || sErr != nil {
		t.Fatalf("provisioned enclave refused: client=%v server=%v", cErr, sErr)
	}
	cErr, sErr := run(false)
	if cErr == nil || !strings.Contains(cErr.Error(), "enclave attestation") {
		t.Fatalf("unprovisioned enclave accepted: %v", cErr)
	}
	if !errors.Is(sErr, ErrNotEnoughClients) {
		t.Fatalf("server err = %v", sErr)
	}
}

// TestSecAggRejectsMissingMaskPub: a client that answers a secagg
// challenge without a mask key is turned away at selection.
func TestSecAggRejectsMissingMaskPub(t *testing.T) {
	sc, cc := Pipe()
	srv := NewServer(newState(0), ServerConfig{Rounds: 1, SecAgg: true})

	var rejected string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer cc.Close()
		msg, err := cc.Recv()
		if err != nil {
			return
		}
		ch, ok := msg.(*Challenge)
		if !ok || !ch.SecAgg {
			return
		}
		_ = cc.Send(&Attest{DeviceID: "bare"})
		if m, err := cc.Recv(); err == nil {
			if rej, ok := m.(*Reject); ok {
				rejected = rej.Reason
			}
		}
	}()
	_, err := srv.Run([]Conn{sc})
	wg.Wait()
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("server err = %v", err)
	}
	if !strings.Contains(rejected, "mask") {
		t.Fatalf("rejection reason = %q", rejected)
	}
}

// TestSecAggRejectsGarbageMaskPub: an unparseable mask key would abort
// every honest peer's masking if it reached the roster, so it is
// rejected at selection like an absent one.
func TestSecAggRejectsGarbageMaskPub(t *testing.T) {
	sc, cc := Pipe()
	srv := NewServer(newState(0), ServerConfig{Rounds: 1, SecAgg: true})

	var rejected string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer cc.Close()
		if _, err := cc.Recv(); err != nil {
			return
		}
		_ = cc.Send(&Attest{DeviceID: "garbled", MaskPub: []byte{1, 2, 3}})
		if m, err := cc.Recv(); err == nil {
			if rej, ok := m.(*Reject); ok {
				rejected = rej.Reason
			}
		}
	}()
	_, err := srv.Run([]Conn{sc})
	wg.Wait()
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("server err = %v", err)
	}
	if !strings.Contains(rejected, "mask") {
		t.Fatalf("rejection reason = %q", rejected)
	}
}

// TestMaskSharesRejectsShortSeed: a truncated seed must fail decoding
// rather than zero-pad into a wrong-mask subtraction.
func TestMaskSharesRejectsShortSeed(t *testing.T) {
	good := &MaskShares{Round: 1, Shares: []secagg.PairShare{{Device: "d", Seed: [32]byte{9}}}}
	if _, err := DecodeMessage(MsgMaskShares, EncodeMessage(good)); err != nil {
		t.Fatal(err)
	}
	w := wire.NewWriter()
	w.Uvarint(1) // round
	w.Uvarint(1) // one share
	w.String("d")
	w.Blob([]byte{1, 2, 3}) // 3-byte seed
	if _, err := DecodeMessage(MsgMaskShares, w.Bytes()); err == nil {
		t.Fatal("short seed must fail decoding")
	}
}

// TestSecAggRejectsDuplicateDevices: pairwise masking keys masks to
// device names, so a second client with the same name is turned away.
func TestSecAggRejectsDuplicateDevices(t *testing.T) {
	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 1, SecAgg: true, MinClients: 1})
	a := newTestTrainer("twin", false, 2)
	b := newTestTrainer("twin", false, 4)
	clients, err := runSession(t, srv, []*testTrainer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if clients[0].RejectedReason != "" {
		t.Fatalf("first twin rejected: %s", clients[0].RejectedReason)
	}
	if !strings.Contains(clients[1].RejectedReason, "duplicate") {
		t.Fatalf("second twin reason = %q", clients[1].RejectedReason)
	}
	if got := state[0].Data[0]; got != 2 {
		t.Fatalf("state = %v, want only the first twin's update", got)
	}
}

// TestSecAggDuplicateDeviceCannotClobberEnclaveChannel: with an
// enclave, the first establisher of a device name keeps its channel;
// the duplicate is rejected during selection and the surviving twin's
// sealed path still works end to end.
func TestSecAggDuplicateDeviceCannotClobberEnclaveChannel(t *testing.T) {
	enclave, err := secagg.NewEnclave("twin-agg")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()
	a := newTestTrainer("twin", true, 2)
	b := newTestTrainer("twin", true, 2)
	state := newState(5, 50)
	srv := NewServer(state, ServerConfig{
		Rounds: 2, SecAgg: true, Enclave: enclave, MinClients: 1,
		RequireTEE: true, Verifier: setupVerifier(a, b),
		Planner: staticPlanner{0: true},
	})
	clients, err := runSession(t, srv, []*testTrainer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	rejections := 0
	for _, c := range clients {
		if c.RejectedReason != "" {
			rejections++
		}
	}
	if rejections != 1 {
		t.Fatalf("%d twins rejected, want exactly 1 (reasons: %q / %q)",
			rejections, clients[0].RejectedReason, clients[1].RejectedReason)
	}
	// The survivor's trusted channel must still work: both tensors
	// advanced by +2 per round across 2 rounds, protected one included.
	if state[0].Data[0] != 9 || state[1].Data[0] != 54 {
		t.Fatalf("state = %v / %v, want 9 / 54", state[0].Data[0], state[1].Data[0])
	}
}

// TestSecAggProtectionWithoutEnclaveFails: the server must refuse to
// run a protected plan without an enclave rather than unseal updates
// itself.
func TestSecAggProtectionWithoutEnclaveFails(t *testing.T) {
	tr := newTestTrainer("tee", true, 2)
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 1, SecAgg: true, Planner: staticPlanner{0: true},
		RequireTEE: true, Verifier: setupVerifier(tr),
	})
	_, err := runSession(t, srv, []*testTrainer{tr})
	if !errors.Is(err, ErrSecAggNeedsEnclave) {
		t.Fatalf("err = %v, want ErrSecAggNeedsEnclave", err)
	}
}

// TestSecAggEnclaveRequiresChannel: in enclave-backed sessions a client
// without a trusted channel would fracture the uniform masked layout
// and is rejected at selection.
func TestSecAggEnclaveRequiresChannel(t *testing.T) {
	enclave, err := secagg.NewEnclave("strict-agg")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()
	srv := NewServer(newState(0), ServerConfig{Rounds: 1, SecAgg: true, Enclave: enclave})
	plain := newTestTrainer("no-tee", false, 2)
	clients, err := runSession(t, srv, []*testTrainer{plain})
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(clients[0].RejectedReason, "trusted channel") {
		t.Fatalf("reason = %q", clients[0].RejectedReason)
	}
}
