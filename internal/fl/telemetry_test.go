package fl

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/gradsec/gradsec/internal/obs"
)

// runClientTelemetrySession drives a two-client session where each
// device carries its own registry and span sink, returning the server
// registry and the per-device span streams.
func runClientTelemetrySession(t *testing.T, rounds int, optIn bool) (*obs.Registry, []*bytes.Buffer) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := NewServer(newState(0), ServerConfig{
		Rounds: rounds, MinClients: 2, Metrics: reg, ClientTelemetry: optIn,
	})
	devices := []string{"dev-0", "dev-1"}
	serverConns := make([]Conn, len(devices))
	spanBufs := make([]*bytes.Buffer, len(devices))
	var fleet sync.WaitGroup
	for i, d := range devices {
		sc, cc := Pipe()
		serverConns[i] = sc
		spanBufs[i] = &bytes.Buffer{}
		cl := NewClient(cc, newTestTrainer(d, false, 1))
		cl.Metrics = obs.NewRegistry()
		cl.Spans = obs.NewTraceSink(spanBufs[i], nil)
		fleet.Add(1)
		go func() {
			defer fleet.Done()
			if err := cl.Run(); err != nil {
				t.Errorf("client: %v", err)
			}
		}()
	}
	if _, err := srv.Run(serverConns); err != nil {
		t.Fatal(err)
	}
	fleet.Wait()
	return reg, spanBufs
}

// TestClientTelemetryFoldsAtServer: with the server's ClientTelemetry
// opt-in, each device's gradsec_client_* registry rides its GradUps
// upstream and folds into the server registry under tier/shard labels,
// and every device span carries the server-minted round trace ID.
func TestClientTelemetryFoldsAtServer(t *testing.T) {
	const rounds = 2
	reg, spanBufs := runClientTelemetrySession(t, rounds, true)

	for _, d := range []string{"dev-0", "dev-1"} {
		if got := reg.Histogram("gradsec_client_train_ns", "", "tier", "client", "shard", d).Count(); got != rounds {
			t.Fatalf("train_ns{%s} folded %d observations, want %d", d, got, rounds)
		}
		if got := reg.Counter("gradsec_client_rounds_total", "", "result", "ok", "tier", "client", "shard", d).Value(); got != rounds {
			t.Fatalf("client_rounds_total{%s} = %d, want %d", d, got, rounds)
		}
	}
	for i, buf := range spanBufs {
		lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
		if len(lines) != rounds {
			t.Fatalf("device %d emitted %d spans, want %d:\n%s", i, len(lines), rounds, buf.String())
		}
		for round, line := range lines {
			if !strings.Contains(line, `"span":"train"`) {
				t.Fatalf("device %d round %d: not a train span: %s", i, round, line)
			}
			want := fmt.Sprintf(`"trace":"%016x"`, obs.RoundTrace(round))
			if !strings.Contains(line, want) {
				t.Fatalf("device %d round %d span misses the round trace %s: %s", i, round, want, line)
			}
		}
	}
}

// TestClientTelemetryRequiresOptIn: a device may attach telemetry to
// its GradUps, but a server without ClientTelemetry must drop the
// blobs — folding per-device data is the operator's policy decision.
func TestClientTelemetryRequiresOptIn(t *testing.T) {
	reg, _ := runClientTelemetrySession(t, 1, false)
	if got := reg.Histogram("gradsec_client_train_ns", "", "tier", "client", "shard", "dev-0").Count(); got != 0 {
		t.Fatalf("client telemetry folded without the server opt-in: %d observations", got)
	}
}
