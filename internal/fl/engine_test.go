package fl

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
)

// gateTrainer is a testTrainer whose TrainRound blocks on specific
// rounds until released — a controllable straggler.
type gateTrainer struct {
	*testTrainer
	mu      sync.Mutex
	blockOn map[int]chan struct{}
}

func newGateTrainer(id string, delta float64, blockRounds ...int) *gateTrainer {
	g := &gateTrainer{testTrainer: newTestTrainer(id, false, delta), blockOn: map[int]chan struct{}{}}
	for _, r := range blockRounds {
		g.blockOn[r] = make(chan struct{})
	}
	return g
}

// release unblocks the trainer for the given round.
func (g *gateTrainer) release(round int) {
	g.mu.Lock()
	gate := g.blockOn[round]
	g.mu.Unlock()
	if gate != nil {
		close(gate)
	}
}

func (g *gateTrainer) TrainRound(round int, plain []*tensor.Tensor, sealed []byte, plan []byte) ([]*tensor.Tensor, []byte, error) {
	g.mu.Lock()
	gate := g.blockOn[round]
	g.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return g.testTrainer.TrainRound(round, plain, sealed, plan)
}

// engineEvent is one hook firing, serialised for test assertions.
type engineEvent struct {
	kind    string // "started", "folded", "quarantined", "probation", "closed"
	round   int
	device  string
	sampled []string
	stats   RoundStats
}

func eventHooks(events chan engineEvent) Hooks {
	return Hooks{
		RoundStarted: func(round int, sampled []string) {
			events <- engineEvent{kind: "started", round: round, sampled: sampled}
		},
		UpdateFolded: func(round int, device string) {
			events <- engineEvent{kind: "folded", round: round, device: device}
		},
		ClientQuarantined: func(device string, reason error) {
			events <- engineEvent{kind: "quarantined", device: device}
		},
		ClientProbationed: func(device string, reason error) {
			events <- engineEvent{kind: "probation", device: device}
		},
		RoundClosed: func(stats RoundStats) {
			events <- engineEvent{kind: "closed", round: stats.Round, stats: stats}
		},
	}
}

func waitEvent(t *testing.T, events <-chan engineEvent, kind string) engineEvent {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case e := <-events:
			if e.kind == kind {
				return e
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q event", kind)
		}
	}
}

// startSession wires trainers to the server over pipes without failing
// the test on client-side errors (quarantine scenarios produce them).
func startSession(srv *Server, trainers []Trainer) (serverErr chan error, clients []*Client, clientErrs []error, wg *sync.WaitGroup) {
	serverConns := make([]Conn, len(trainers))
	clients = make([]*Client, len(trainers))
	clientErrs = make([]error, len(trainers))
	wg = &sync.WaitGroup{}
	for i, tr := range trainers {
		sc, cc := Pipe()
		serverConns[i] = sc
		clients[i] = NewClient(cc, tr)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = clients[i].Run()
		}(i)
	}
	serverErr = make(chan error, 1)
	go func() {
		_, err := srv.Run(serverConns)
		serverErr <- err
	}()
	return serverErr, clients, clientErrs, wg
}

// TestAllClientsStraggle: when every sampled client misses the round
// deadline the round fails with ErrNotEnoughClients.
func TestAllClientsStraggle(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	straggler := newGateTrainer("slow", 1, 0)
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 2, MinClients: 1, RoundDeadline: time.Second, Clock: clk,
	})
	serverErr, _, _, wg := startSession(srv, []Trainer{straggler})

	// The deadline timer is armed before models go out; once it exists
	// the round is in flight and advancing fires it.
	for clk.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Second)

	err := <-serverErr
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("err = %v, want ErrNotEnoughClients", err)
	}
	straggler.release(0)
	wg.Wait()

	trace := srv.Trace()
	if len(trace) != 1 {
		t.Fatalf("trace has %d rounds, want 1", len(trace))
	}
	if trace[0].Responded != 0 || trace[0].Dropped != 1 {
		t.Fatalf("round 0 stats = %+v", trace[0])
	}
}

// TestStragglerDroppedSessionContinues: a straggler is dropped for the
// round (≥ MinClients responders still succeed), its late update is
// discarded, and it participates again in the next round.
func TestStragglerDroppedSessionContinues(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	events := make(chan engineEvent, 64)
	fast := newTestTrainer("fast", false, 2)
	slow := newGateTrainer("slow", 4, 0)
	state := newState(0)
	srv := NewServer(state, ServerConfig{
		Rounds: 2, MinClients: 1, RoundDeadline: time.Second, Clock: clk,
		Hooks: eventHooks(events),
	})
	serverErr, clients, _, wg := startSession(srv, []Trainer{fast, slow})

	// Round 0: fast responds, slow blocks. Fire the deadline only after
	// fast's update folded so the drop set is deterministic.
	waitEvent(t, events, "folded")
	clk.Advance(time.Second)
	closed := waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Dropped != 1 {
		t.Fatalf("round 0 stats = %+v", closed.stats)
	}

	// Round 1: release the straggler; its stale round-0 update must be
	// discarded, then both clients answer round 1.
	waitEvent(t, events, "started")
	slow.release(0)
	closed = waitEvent(t, events, "closed")
	if closed.stats.Responded != 2 || closed.stats.Dropped != 0 {
		t.Fatalf("round 1 stats = %+v", closed.stats)
	}
	if closed.stats.LateDiscarded != 1 {
		t.Fatalf("round 1 discarded %d late updates, want 1", closed.stats.LateDiscarded)
	}

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Round 0 applied only fast's +2; round 1 applied mean(2,4) = +3.
	if got := state[0].Data[0]; got != 5 {
		t.Fatalf("state = %v, want 5", got)
	}
	if clients[1].Rounds != 2 {
		t.Fatalf("straggler completed %d rounds, want 2 (dropped, not quarantined)", clients[1].Rounds)
	}
}

// TestSampledOutClientReceivesNoTraffic: a client outside the round's
// cohort sees no ModelDown for that round — its local round count equals
// exactly the number of times the engine sampled it.
func TestSampledOutClientReceivesNoTraffic(t *testing.T) {
	events := make(chan engineEvent, 64)
	trainers := []Trainer{
		newTestTrainer("c0", false, 1),
		newTestTrainer("c1", false, 2),
		newTestTrainer("c2", false, 4),
	}
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 4, SampleCount: 2, SampleSeed: 7, Hooks: eventHooks(events),
	})
	serverErr, clients, clientErrs, wg := startSession(srv, trainers)

	sampledTimes := map[string]int{}
	for rounds := 0; rounds < 4; {
		e := <-events
		switch e.kind {
		case "started":
			for _, d := range e.sampled {
				sampledTimes[d]++
			}
		case "closed":
			rounds++
			if e.stats.Sampled != 2 || e.stats.Responded != 2 {
				t.Fatalf("round %d stats = %+v", e.round, e.stats)
			}
		}
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, c := range clients {
		if clientErrs[i] != nil {
			t.Fatalf("client %d: %v", i, clientErrs[i])
		}
		want := sampledTimes[[]string{"c0", "c1", "c2"}[i]]
		if c.Rounds != want {
			t.Fatalf("client %d trained %d rounds, sampled %d times", i, c.Rounds, want)
		}
	}
	total := sampledTimes["c0"] + sampledTimes["c1"] + sampledTimes["c2"]
	if total != 8 {
		t.Fatalf("total participations = %d, want 4 rounds × 2 sampled", total)
	}
}

// TestQuarantinedClientExcludedFromLaterRounds: a client whose training
// fails is quarantined — the session survives and the client is never
// sampled again.
func TestQuarantinedClientExcludedFromLaterRounds(t *testing.T) {
	events := make(chan engineEvent, 64)
	bad := newTestTrainer("bad", false, 100)
	bad.failOnRound = 0
	trainers := []Trainer{
		newTestTrainer("good1", false, 1),
		newTestTrainer("good2", false, 3),
		bad,
	}
	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 3, Hooks: eventHooks(events)})
	serverErr, _, clientErrs, wg := startSession(srv, trainers)

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	trace := srv.Trace()
	if len(trace) != 3 {
		t.Fatalf("trace has %d rounds", len(trace))
	}
	if trace[0].Sampled != 3 || trace[0].Responded != 2 || trace[0].Quarantined != 1 {
		t.Fatalf("round 0 stats = %+v", trace[0])
	}
	for r := 1; r < 3; r++ {
		if trace[r].Sampled != 2 || trace[r].Responded != 2 || trace[r].Quarantined != 0 {
			t.Fatalf("round %d stats = %+v", r, trace[r])
		}
	}
	// Drain hook events: no round after 0 may sample the quarantined client.
	close(events)
	for e := range events {
		if e.kind == "started" && e.round > 0 {
			for _, d := range e.sampled {
				if d == "bad" {
					t.Fatalf("quarantined client sampled in round %d", e.round)
				}
			}
		}
	}
	// All 3 rounds averaged only the good clients: mean(1,3) = 2 each.
	if got := state[0].Data[0]; got != 6 {
		t.Fatalf("state = %v, want 6", got)
	}
	if clientErrs[2] == nil {
		t.Fatal("failed client should see an error")
	}
}

// TestQuarantineProbationReadmission: with QuarantineRounds set, a
// training failure excludes the client from sampling for exactly that
// many rounds, after which it is eligible (and trains) again. The
// connection survives the probation.
func TestQuarantineProbationReadmission(t *testing.T) {
	events := make(chan engineEvent, 64)
	flaky := newTestTrainer("flaky", false, 4)
	flaky.failOnRound = 0
	good := newTestTrainer("good", false, 2)
	state := newState(0)
	srv := NewServer(state, ServerConfig{
		Rounds: 4, QuarantineRounds: 1, Hooks: eventHooks(events),
	})
	serverErr, clients, clientErrs, wg := startSession(srv, []Trainer{good, flaky})

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	trace := srv.Trace()
	if len(trace) != 4 {
		t.Fatalf("trace has %d rounds", len(trace))
	}
	// Round 0: both sampled, flaky fails and goes on probation — booked
	// under Probation, not Quarantined (the exclusion is temporary).
	if trace[0].Sampled != 2 || trace[0].Responded != 1 || trace[0].Probation != 1 || trace[0].Quarantined != 0 {
		t.Fatalf("round 0 stats = %+v", trace[0])
	}
	// Round 1: flaky is on probation — not eligible for sampling.
	if trace[1].Sampled != 1 || trace[1].Responded != 1 {
		t.Fatalf("round 1 stats = %+v", trace[1])
	}
	// Rounds 2-3: probation over, flaky re-admitted and responding.
	for r := 2; r < 4; r++ {
		if trace[r].Sampled != 2 || trace[r].Responded != 2 || trace[r].Quarantined != 0 || trace[r].Probation != 0 {
			t.Fatalf("round %d stats = %+v", r, trace[r])
		}
	}
	// Sampling eligibility, per round, via the engine's own hook stream.
	sampledByRound := map[int][]string{}
	close(events)
	for e := range events {
		if e.kind == "started" {
			sampledByRound[e.round] = e.sampled
		}
	}
	for _, d := range sampledByRound[1] {
		if d == "flaky" {
			t.Fatal("client sampled while on probation")
		}
	}
	found := false
	for _, d := range sampledByRound[2] {
		if d == "flaky" {
			found = true
		}
	}
	if !found {
		t.Fatal("client not re-admitted after probation")
	}
	// r0: +2 (good alone) · r1: +2 · r2, r3: mean(2,4) = +3 each.
	if got := state[0].Data[0]; got != 10 {
		t.Fatalf("state = %v, want 10", got)
	}
	// The probationed client finished the session cleanly: it received
	// Done after training rounds 2 and 3.
	if clientErrs[1] != nil {
		t.Fatalf("probationed client errored: %v", clientErrs[1])
	}
	if clients[1].Rounds != 2 {
		t.Fatalf("probationed client trained %d rounds, want 2", clients[1].Rounds)
	}
	if len(clients[1].Final) == 0 {
		t.Fatal("probationed client missed the final model")
	}
}

// TestProbationRepeatFailureRenews: each failure during probationable
// rounds renews the exclusion window; a client that fails every time it
// is sampled never responds but also never kills the session.
func TestProbationRepeatFailureRenews(t *testing.T) {
	alwaysBad := newTestTrainer("bad", false, 8)
	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 5, QuarantineRounds: 1})
	// Fail on every round by reusing the trainer hook: failOnRound only
	// matches one round, so wrap TrainRound via a gate-style trainer.
	bad := &alwaysFailTrainer{testTrainer: alwaysBad}
	good := newTestTrainer("good", false, 2)
	serverErr, _, _, wg := startSession(srv, []Trainer{good, bad})
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	probations := 0
	for _, st := range srv.Trace() {
		probations += st.Probation
		if st.Responded != 1 {
			t.Fatalf("stats = %+v, want only the good client folding", st)
		}
		if st.Quarantined != 0 {
			t.Fatalf("stats = %+v, probation must not book a permanent quarantine", st)
		}
	}
	// Rounds 0, 2, 4 sample the bad client (probation covers 1 and 3).
	if probations != 3 {
		t.Fatalf("bad client failed %d times, want 3", probations)
	}
	if got := state[0].Data[0]; got != 10 {
		t.Fatalf("state = %v, want 10", got)
	}
}

// alwaysFailTrainer reports a training failure every round.
type alwaysFailTrainer struct{ *testTrainer }

func (a *alwaysFailTrainer) TrainRound(round int, plain []*tensor.Tensor, sealed []byte, plan []byte) ([]*tensor.Tensor, []byte, error) {
	return nil, nil, errors.New("chronic failure")
}

// TestStreamingEqualsBufferedFedAvg: folding a seeded set of updates
// through the streaming aggregator must reproduce buffered FedAvg
// bit-for-bit when fed in the same order.
func TestStreamingEqualsBufferedFedAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := []*tensor.Tensor{tensor.New(3, 4), tensor.New(7), tensor.New(2, 2, 2)}
	const clients = 9
	updates := make([][]*tensor.Tensor, clients)
	for c := range updates {
		upd := make([]*tensor.Tensor, len(ref))
		for i, r := range ref {
			upd[i] = tensor.Randn(rng, 1.0, r.Shape...)
		}
		updates[c] = upd
	}

	buffered := FedAvg(updates)

	agg := NewAggregator(ref)
	for _, upd := range updates {
		if err := agg.Add(upd, 1); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := agg.Mean()
	if err != nil {
		t.Fatal(err)
	}

	for i := range ref {
		for j := range buffered[i].Data {
			if buffered[i].Data[j] != streamed[i].Data[j] {
				t.Fatalf("tensor %d elem %d: buffered %v != streamed %v",
					i, j, buffered[i].Data[j], streamed[i].Data[j])
			}
		}
	}
}

// TestAggregatorRejectsBadUpdates covers the streaming validation path.
func TestAggregatorRejectsBadUpdates(t *testing.T) {
	ref := newState(0, 0)
	agg := NewAggregator(ref)
	if err := agg.Add([]*tensor.Tensor{tensor.Full(1, 2, 2)}, 1); err == nil {
		t.Fatal("short update must be rejected")
	}
	if err := agg.Add([]*tensor.Tensor{tensor.Full(1, 3), tensor.Full(1, 2, 2)}, 1); err == nil {
		t.Fatal("misshapen update must be rejected")
	}
	if err := agg.Add([]*tensor.Tensor{nil, tensor.Full(1, 2, 2)}, 1); err == nil {
		t.Fatal("nil tensor must be rejected")
	}
	if err := agg.Add([]*tensor.Tensor{tensor.Full(1, 2, 2), tensor.Full(1, 2, 2)}, 0); err == nil {
		t.Fatal("zero weight must be rejected")
	}
	if _, err := agg.Mean(); err == nil {
		t.Fatal("mean of zero updates must fail")
	}
}

// TestSampleFractionCohortSize checks ⌈fraction·live⌉ cohort sizing and
// the MinClients floor.
func TestSampleFractionCohortSize(t *testing.T) {
	trainers := make([]Trainer, 5)
	for i := range trainers {
		trainers[i] = newTestTrainer(string(rune('a'+i)), false, 1)
	}
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 2, SampleFraction: 0.5, MinClients: 2,
	})
	serverErr, _, _, wg := startSession(srv, trainers)
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for _, st := range srv.Trace() {
		if st.Sampled != 3 { // ceil(0.5 × 5)
			t.Fatalf("round %d sampled %d, want 3", st.Round, st.Sampled)
		}
	}
}
