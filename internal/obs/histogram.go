package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout. Values 0..linearMax-1 get one bucket each
// (exact small-value resolution — staleness counts, strike counts,
// shard sizes). Above that, each power-of-two octave is split into
// subCount sub-buckets, giving a worst-case relative error of 1/subCount
// (12.5%) across the full int64 range — enough to rank nanosecond
// latencies from microseconds to minutes in a fixed 528-slot array.
const (
	linearMax  = 64 // values < linearMax are exact
	subBits    = 3
	subCount   = 1 << subBits // sub-buckets per octave
	linearBits = 6            // log2(linearMax)
	numBuckets = linearMax + (63-linearBits+1)*subCount
)

// Histogram is a fixed-size log-bucketed histogram of non-negative
// int64 samples. Observe is lock-free (two atomic adds and an atomic
// increment); histograms with the same layout merge by bucket-wise
// addition, so per-shard histograms can be folded into a fleet-wide
// one. A nil Histogram discards observations and reports zeros.
//
// Each bucket optionally carries an exemplar — the value and round ID
// of the most recent (highest-round) sample that landed in it — so an
// operator looking at a latency spike in the exposition can jump
// straight to the round that caused it.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	// exRound holds round+1 of the bucket's exemplar (0 = none) and
	// exVal the exemplar's sample value. Best-effort: the pair is not
	// updated atomically together, which can momentarily pair a value
	// with a neighbouring round's ID under contention — acceptable for
	// a debugging aid, and race-clean for the detector.
	exRound [numBuckets]atomic.Uint64
	exVal   [numBuckets]atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a sample to its bucket index. Negative samples clamp
// into bucket 0 with the zeros.
func bucketOf(v int64) int {
	if v < linearMax {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= linearBits
	sub := (uint64(v) >> (uint(exp) - subBits)) & (subCount - 1)
	return linearMax + (exp-linearBits)*subCount + int(sub)
}

// bucketUpper returns the largest sample value that lands in bucket b —
// the inclusive upper bound Quantile reports.
func bucketUpper(b int) int64 {
	if b < linearMax {
		return int64(b)
	}
	rel := b - linearMax
	exp := uint(linearBits + rel/subCount)
	sub := uint64(rel % subCount)
	base := uint64(1) << exp
	upper := base + (sub+1)<<(exp-subBits) - 1
	if upper > uint64(1<<63-1) {
		return 1<<63 - 1
	}
	return int64(upper)
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveEx records one sample with a round-ID exemplar: the bucket
// remembers the value and round of its most recent sample (by round
// number), exposed in the Prometheus exposition. Costs two extra
// atomic stores over Observe — still allocation-free.
func (h *Histogram) ObserveEx(v int64, round int) {
	if h == nil {
		return
	}
	b := bucketOf(v)
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if round >= 0 {
		er := uint64(round) + 1
		if h.exRound[b].Load() <= er {
			h.exRound[b].Store(er)
			h.exVal[b].Store(v)
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Merge folds o's buckets into h. Both histograms share the fixed
// layout, so the merge is exact: quantiles of the merged histogram
// equal quantiles of the concatenated sample streams (up to bucket
// resolution). The source is read through snapshot(), so merging from
// a histogram that is concurrently being observed still preserves the
// count == Σbuckets invariant in the destination (the merged-in total
// is derived from the very bucket loads that were copied, never from a
// separately-loaded counter that may have raced ahead). A nil receiver
// or operand is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	counts, count, sum := o.snapshot()
	for i := range counts {
		if counts[i] != 0 {
			h.counts[i].Add(counts[i])
		}
	}
	h.count.Add(count)
	h.sum.Add(sum)
	for i := range o.exRound {
		if er := o.exRound[i].Load(); er != 0 && h.exRound[i].Load() <= er {
			h.exVal[i].Store(o.exVal[i].Load())
			h.exRound[i].Store(er)
		}
	}
}

// mergeRaw folds decoded sparse snapshot buckets into h — the
// cross-process counterpart of Merge, used by Registry.MergeSnapshot.
// count and sum are added as given (snapshot deltas keep them
// consistent with the buckets); exemplars keep the newer round.
func (h *Histogram) mergeRaw(idx []uint32, n []uint64, exRound []uint64, exVal []int64, count uint64, sum int64) {
	if h == nil {
		return
	}
	for i, b := range idx {
		if int(b) >= numBuckets {
			continue
		}
		if n[i] != 0 {
			h.counts[b].Add(n[i])
		}
		if i < len(exRound) && exRound[i] != 0 && h.exRound[b].Load() <= exRound[i] {
			h.exVal[b].Store(exVal[i])
			h.exRound[b].Store(exRound[i])
		}
	}
	h.count.Add(count)
	h.sum.Add(sum)
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// sample (0 < q <= 1), i.e. an inclusive upper estimate with the
// layout's relative error. The rank convention is ceil(q·n) over the
// sorted samples, so for any sample set, Quantile(q) equals the bucket
// upper bound of the true q-quantile element — the property the oracle
// test checks exactly. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) { // ceil
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// snapshot copies the bucket counts for export. The total is derived
// from the copied buckets rather than the live count field, so the
// snapshot's count always equals the sum of its buckets even while
// observers are concurrently adding samples — the invariant quantile
// rank math, exposition cumulative counts, and cross-process merges
// all rely on. For a quiescent histogram it equals count.Load().
func (h *Histogram) snapshot() (counts [numBuckets]uint64, count uint64, sum int64) {
	if h == nil {
		return
	}
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		count += counts[i]
	}
	return counts, count, h.sum.Load()
}
