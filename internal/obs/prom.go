package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every family in the registry in Prometheus
// text exposition format (version 0.0.4), deterministically ordered by
// family name and label values. Histograms are coarsened to cumulative
// power-of-two `le` boundaries — the internal sub-bucket resolution
// stays available through Quantile, while the exposition stays small
// enough to scrape from thousands of edges. A nil registry writes
// nothing.
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, inst := range f.sortedInstruments() {
			if err := writeInstrument(w, f, inst); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelString renders {k="v",...} for the instrument, with extra
// appended verbatim (used for the histogram `le` label). Returns ""
// when there are no labels at all.
func labelString(f *family, inst *instrument, extra string) string {
	var sb strings.Builder
	for i, k := range f.labelKeys {
		if i >= len(inst.labelVals) {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, inst.labelVals[i])
	}
	if extra != "" {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
	}
	if sb.Len() == 0 {
		return ""
	}
	return "{" + sb.String() + "}"
}

func writeInstrument(w io.Writer, f *family, inst *instrument) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f, inst, ""), inst.counter.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f, inst, ""), inst.gauge.Value())
		return err
	case KindHistogram:
		return writeHistogram(w, f, inst)
	}
	return nil
}

func writeHistogram(w io.Writer, f *family, inst *instrument) error {
	counts, count, sum := inst.hist.snapshot()

	// Fold the fine-grained buckets into cumulative counts at
	// power-of-two boundaries: le = 2^k - 1 for k = linearBits..63.
	// Emit boundaries up to the first one covering all samples, then
	// +Inf; an empty histogram still emits the first boundary so the
	// family parses as a histogram.
	var cum uint64
	bucket := 0
	for k := linearBits; k <= 63; k++ {
		upper := uint64(1)<<uint(k) - 1
		lo := bucket
		for bucket < numBuckets && uint64(bucketUpper(bucket)) <= upper {
			cum += counts[bucket]
			bucket++
		}
		// OpenMetrics-style exemplar: the newest-round sample among the
		// fine buckets folded into this boundary, as
		// `... # {round="3"} value`. Only emitted when a bucket in range
		// recorded one (ObserveEx), so plain Observe streams render
		// exactly as before.
		exemplar := ""
		var bestER uint64
		var bestVal int64
		for b := lo; b < bucket; b++ {
			if er := inst.hist.exRound[b].Load(); er > bestER {
				bestER = er
				bestVal = inst.hist.exVal[b].Load()
			}
		}
		if bestER != 0 {
			exemplar = fmt.Sprintf(" # {round=\"%d\"} %d", bestER-1, bestVal)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			f.name, labelString(f, inst, fmt.Sprintf("le=%q", fmt.Sprint(upper))), cum, exemplar); err != nil {
			return err
		}
		if cum == count && k > linearBits {
			break
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f, inst, `le="+Inf"`), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.name, labelString(f, inst, ""), sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f, inst, ""), count)
	return err
}
