// Package obs is the fleet telemetry subsystem: cheap atomic counters
// and gauges, log-bucketed latency/size histograms (mergeable, with
// quantile queries), a Registry of labeled metric families exportable
// in Prometheus text exposition, and span-based round tracing written
// as JSONL and timed on an injected simclock.WallClock so simulated
// traces stay deterministic.
//
// The package is engineered around one invariant: a *disabled* registry
// costs nothing on the hot path. Every instrument method is nil-safe —
// a nil *Counter, *Gauge, *Histogram, *TraceSink or *Span is a no-op —
// and a nil *Registry hands out nil instruments, so instrumented code
// resolves its handles once at construction and pays a single
// predictable branch per event when observability is off. No
// allocation, no time source read, no atomic write.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter discards every operation.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil Gauge discards every operation.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current gauge reading (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Kind discriminates metric families.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// family is one named metric family: a kind, a help string, a label-key
// schema, and one instrument per distinct label-value tuple.
type family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string

	mu      sync.Mutex
	metrics map[string]*instrument // keyed by joined label values
}

// instrument is one (family, label values) cell.
type instrument struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// Registry holds labeled metric families. A nil Registry is the
// disabled registry: every getter returns nil, which the instruments
// treat as a no-op — the zero-cost off switch.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelPairs splits a flat "key, value, key, value, …" argument list.
// An odd trailing key is dropped rather than panicking: instrumentation
// must never take the process down.
func labelPairs(kv []string) (keys, vals []string) {
	n := len(kv) / 2
	if n == 0 {
		return nil, nil
	}
	keys = make([]string, n)
	vals = make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = kv[2*i]
		vals[i] = kv[2*i+1]
	}
	return keys, vals
}

const labelSep = "\x1f"

func joinVals(vals []string) string {
	out := ""
	for i, v := range vals {
		if i > 0 {
			out += labelSep
		}
		out += v
	}
	return out
}

// get resolves (creating on first use) the instrument cell for a
// family and label tuple. The family's kind and label keys are fixed by
// the first registration; later calls with a conflicting schema get a
// detached instrument that is never exported, so a programming error
// degrades to a silent metric rather than a crash.
func (r *Registry) get(name, help string, kind Kind, kv []string) *instrument {
	keys, vals := labelPairs(kv)
	return r.getCell(name, help, kind, keys, vals)
}

// getCell is get with the label schema already split — the entry point
// cross-process snapshot merging uses, since decoded snapshots carry
// keys and values as separate slices.
func (r *Registry) getCell(name, help string, kind Kind, keys, vals []string) *instrument {
	r.mu.Lock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, labelKeys: keys, metrics: make(map[string]*instrument)}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind || len(f.labelKeys) != len(keys) {
		return newInstrument(kind, vals) // schema conflict: detached cell
	}
	key := joinVals(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	inst := f.metrics[key]
	if inst == nil {
		inst = newInstrument(kind, vals)
		f.metrics[key] = inst
	}
	return inst
}

func newInstrument(kind Kind, vals []string) *instrument {
	inst := &instrument{labelVals: vals}
	switch kind {
	case KindCounter:
		inst.counter = &Counter{}
	case KindGauge:
		inst.gauge = &Gauge{}
	case KindHistogram:
		inst.hist = NewHistogram()
	}
	return inst
}

// Counter returns the counter for the given family name and label
// tuple, registering the family on first use. Labels are flat
// "key, value" pairs; the same name and values always return the same
// instance. A nil Registry returns nil (a no-op counter).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, help, KindCounter, labels).counter
}

// Gauge returns the gauge for the given family name and label tuple.
// A nil Registry returns nil (a no-op gauge).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, help, KindGauge, labels).gauge
}

// Histogram returns the histogram for the given family name and label
// tuple. A nil Registry returns nil (a no-op histogram).
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, help, KindHistogram, labels).hist
}

// snapshotFamilies returns the families sorted by name and, within each,
// the instruments sorted by label values — the deterministic iteration
// order the exporters use.
func (r *Registry) snapshotFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedInstruments returns a family's cells in label-value order.
func (f *family) sortedInstruments() []*instrument {
	f.mu.Lock()
	keys := make([]string, 0, len(f.metrics))
	for k := range f.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*instrument, len(keys))
	for i, k := range keys {
		out[i] = f.metrics[k]
	}
	f.mu.Unlock()
	return out
}
