package obs

import (
	"fmt"

	"github.com/gradsec/gradsec/internal/wire"
)

// Snapshot is a portable point-in-time (or delta) copy of a Registry:
// family schemas plus per-instrument values, with histograms carried as
// sparse bucket vectors. Snapshots encode to a compact wire blob that
// rides the federation protocol's trailing telemetry fields, and merge
// into any Registry — the same log-bucket layout on both sides makes
// the fold exact, so per-shard histograms compose associatively up
// arbitrary aggregation trees.
type Snapshot struct {
	Families []SnapFamily
}

// SnapFamily is one metric family in a snapshot.
type SnapFamily struct {
	Name        string
	Help        string
	Kind        Kind
	LabelKeys   []string
	Instruments []SnapInstrument
}

// SnapInstrument is one (family, label values) cell. Counter holds the
// counter value (or delta), Gauge the gauge reading; histograms carry
// parallel sparse arrays: BucketIdx[i] has BucketN[i] samples, with an
// optional exemplar (ExRound[i] = round+1, 0 = none; ExVal[i] = value).
type SnapInstrument struct {
	LabelVals []string
	Counter   uint64
	Gauge     int64
	BucketIdx []uint32
	BucketN   []uint64
	ExRound   []uint64
	ExVal     []int64
	Count     uint64
	Sum       int64
}

// snapshotVersion is the telemetry wire-format version byte.
const snapshotVersion = 1

// snapInstrument builds the sparse representation of one instrument.
func snapInstrument(kind Kind, inst *instrument) SnapInstrument {
	si := SnapInstrument{LabelVals: inst.labelVals}
	switch kind {
	case KindCounter:
		si.Counter = inst.counter.Value()
	case KindGauge:
		si.Gauge = inst.gauge.Value()
	case KindHistogram:
		counts, count, sum := inst.hist.snapshot()
		si.Count, si.Sum = count, sum
		for b := range counts {
			er := inst.hist.exRound[b].Load()
			if counts[b] == 0 && er == 0 {
				continue
			}
			si.BucketIdx = append(si.BucketIdx, uint32(b))
			si.BucketN = append(si.BucketN, counts[b])
			si.ExRound = append(si.ExRound, er)
			si.ExVal = append(si.ExVal, inst.hist.exVal[b].Load())
		}
	}
	return si
}

// TakeSnapshot copies the registry's current cumulative state. A nil
// registry yields an empty snapshot.
func TakeSnapshot(r *Registry) *Snapshot {
	s := &Snapshot{}
	for _, f := range r.snapshotFamilies() {
		sf := SnapFamily{Name: f.name, Help: f.help, Kind: f.kind, LabelKeys: f.labelKeys}
		for _, inst := range f.sortedInstruments() {
			sf.Instruments = append(sf.Instruments, snapInstrument(f.kind, inst))
		}
		if len(sf.Instruments) > 0 {
			s.Families = append(s.Families, sf)
		}
	}
	return s
}

// Encode serialises the snapshot to the telemetry wire format.
func (s *Snapshot) Encode() []byte {
	w := wire.GetWriter()
	s.encodeTo(w)
	b := w.Detach()
	wire.PutWriter(w)
	return b
}

func (s *Snapshot) encodeTo(w *wire.Writer) {
	w.Uvarint(snapshotVersion)
	w.Uvarint(uint64(len(s.Families)))
	for _, f := range s.Families {
		w.String(f.Name)
		w.String(f.Help)
		w.Uvarint(uint64(f.Kind))
		w.Uvarint(uint64(len(f.LabelKeys)))
		for _, k := range f.LabelKeys {
			w.String(k)
		}
		w.Uvarint(uint64(len(f.Instruments)))
		for _, inst := range f.Instruments {
			for _, v := range inst.LabelVals {
				w.String(v)
			}
			switch f.Kind {
			case KindCounter:
				w.Uvarint(inst.Counter)
			case KindGauge:
				w.Uvarint(uint64(inst.Gauge))
			case KindHistogram:
				w.Uvarint(inst.Count)
				w.Uvarint(uint64(inst.Sum))
				w.Uvarint(uint64(len(inst.BucketIdx)))
				for i, b := range inst.BucketIdx {
					w.Uvarint(uint64(b))
					w.Uvarint(inst.BucketN[i])
					w.Uvarint(inst.ExRound[i])
					w.Uvarint(uint64(inst.ExVal[i]))
				}
			}
		}
	}
}

// snapListLen reads a list length and bounds it against the remaining
// payload (each element costs at least one encoded byte), so a hostile
// count claim cannot force a large allocation or a long loop.
func snapListLen(r *wire.Reader, what string) int {
	n := r.Uvarint()
	if r.Err() != nil {
		return 0
	}
	if n > uint64(r.Remaining()) {
		r.Fail(what)
		return 0
	}
	return int(n)
}

// DecodeSnapshot parses a telemetry blob produced by Snapshot.Encode.
// Decoding is hostile-input safe: every length claim is checked against
// the remaining payload before allocation, bucket indices are bounded
// by the histogram layout, and corrupt input returns an error rather
// than panicking.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r := wire.NewReader(data)
	if v := r.Uvarint(); r.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("obs: unsupported telemetry version %d", v)
	}
	s := &Snapshot{}
	nf := snapListLen(r, "telemetry family count")
	for fi := 0; fi < nf && r.Err() == nil; fi++ {
		f := SnapFamily{Name: r.String(), Help: r.String(), Kind: Kind(r.Uvarint())}
		if r.Err() == nil && f.Kind > KindHistogram {
			r.Fail("telemetry family kind")
		}
		nk := snapListLen(r, "telemetry label key count")
		for i := 0; i < nk && r.Err() == nil; i++ {
			f.LabelKeys = append(f.LabelKeys, r.String())
		}
		ni := snapListLen(r, "telemetry instrument count")
		for i := 0; i < ni && r.Err() == nil; i++ {
			inst := SnapInstrument{}
			for k := 0; k < nk && r.Err() == nil; k++ {
				inst.LabelVals = append(inst.LabelVals, r.String())
			}
			switch f.Kind {
			case KindCounter:
				inst.Counter = r.Uvarint()
			case KindGauge:
				inst.Gauge = int64(r.Uvarint())
			case KindHistogram:
				inst.Count = r.Uvarint()
				inst.Sum = int64(r.Uvarint())
				nb := snapListLen(r, "telemetry bucket count")
				if nb > numBuckets {
					r.Fail("telemetry bucket count")
				}
				for b := 0; b < nb && r.Err() == nil; b++ {
					idx := r.Uvarint()
					if r.Err() == nil && idx >= numBuckets {
						r.Fail("telemetry bucket index")
						break
					}
					inst.BucketIdx = append(inst.BucketIdx, uint32(idx))
					inst.BucketN = append(inst.BucketN, r.Uvarint())
					inst.ExRound = append(inst.ExRound, r.Uvarint())
					inst.ExVal = append(inst.ExVal, int64(r.Uvarint()))
				}
			}
			f.Instruments = append(f.Instruments, inst)
		}
		s.Families = append(s.Families, f)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("obs: %d trailing bytes after telemetry snapshot", r.Remaining())
	}
	return s, nil
}

// MergeSnapshot folds a snapshot into the registry, extending each
// family's label schema with the flat "key, value" pairs in extraKV —
// the tier/shard provenance labels an aggregator stamps on telemetry
// from below. An extra key already present in a family's schema is
// skipped for that family (the innermost origin wins), so telemetry
// that was already labeled at a lower tier passes through unchanged.
// Counters and histogram buckets are added (snapshot deltas compose
// associatively up aggregation trees); gauges are set absolutely.
// Instruments whose label values do not match their family schema are
// dropped; a local family registered with a conflicting schema degrades
// to a detached cell, per the registry's usual policy.
func (r *Registry) MergeSnapshot(s *Snapshot, extraKV ...string) {
	if r == nil || s == nil {
		return
	}
	ekeys, evals := labelPairs(extraKV)
	for _, f := range s.Families {
		keys := f.LabelKeys
		var addK, addV []string
		for i, ek := range ekeys {
			present := false
			for _, k := range keys {
				if k == ek {
					present = true
					break
				}
			}
			if !present {
				addK = append(addK, ek)
				addV = append(addV, evals[i])
			}
		}
		if len(addK) > 0 {
			keys = append(append(make([]string, 0, len(keys)+len(addK)), keys...), addK...)
		}
		for _, inst := range f.Instruments {
			if len(inst.LabelVals) != len(f.LabelKeys) {
				continue
			}
			vals := inst.LabelVals
			if len(addV) > 0 {
				vals = append(append(make([]string, 0, len(vals)+len(addV)), vals...), addV...)
			}
			cell := r.getCell(f.Name, f.Help, f.Kind, keys, vals)
			switch f.Kind {
			case KindCounter:
				cell.counter.Add(inst.Counter)
			case KindGauge:
				cell.gauge.Set(inst.Gauge)
			case KindHistogram:
				cell.hist.mergeRaw(inst.BucketIdx, inst.BucketN, inst.ExRound, inst.ExVal, inst.Count, inst.Sum)
			}
		}
	}
}

// prevInst is the per-instrument cumulative state a Snapshotter diffs
// against.
type prevInst struct {
	counter uint64
	gauge   int64
	counts  [numBuckets]uint64
	sum     int64
}

// Snapshotter produces delta-encoded telemetry from a registry: each
// Delta() call emits only what changed since the previous call, so an
// upstream aggregator can add successive deltas without double-counting
// and the per-round wire cost is proportional to activity, not registry
// size. The zero of everything is "send nothing": a quiet round costs
// zero bytes.
type Snapshotter struct {
	reg  *Registry
	prev map[string]*prevInst // keyed by family name + labelSep + joined vals
}

// NewSnapshotter wraps a registry (nil allowed — Delta then returns
// nil).
func NewSnapshotter(reg *Registry) *Snapshotter {
	return &Snapshotter{reg: reg, prev: make(map[string]*prevInst)}
}

// Delta returns the encoded snapshot of changes since the last call,
// or nil when nothing changed (or the registry is nil). Counter and
// histogram values are diffs; gauges are sent absolutely whenever they
// moved. Exemplars are sent absolutely for changed buckets (they merge
// by newest round, so resending is idempotent).
func (sn *Snapshotter) Delta() []byte {
	if sn == nil || sn.reg == nil {
		return nil
	}
	s := &Snapshot{}
	for _, f := range sn.reg.snapshotFamilies() {
		sf := SnapFamily{Name: f.name, Help: f.help, Kind: f.kind, LabelKeys: f.labelKeys}
		for _, inst := range f.sortedInstruments() {
			key := f.name + labelSep + joinVals(inst.labelVals)
			p := sn.prev[key]
			if p == nil {
				p = &prevInst{}
				sn.prev[key] = p
			}
			si := SnapInstrument{LabelVals: inst.labelVals}
			changed := false
			switch f.kind {
			case KindCounter:
				cur := inst.counter.Value()
				if cur != p.counter {
					si.Counter = cur - p.counter
					p.counter = cur
					changed = true
				}
			case KindGauge:
				cur := inst.gauge.Value()
				if cur != p.gauge {
					si.Gauge = cur
					p.gauge = cur
					changed = true
				}
			case KindHistogram:
				counts, _, sum := inst.hist.snapshot()
				var dcount uint64
				for b := range counts {
					d := counts[b] - p.counts[b]
					if d == 0 {
						continue
					}
					dcount += d
					si.BucketIdx = append(si.BucketIdx, uint32(b))
					si.BucketN = append(si.BucketN, d)
					si.ExRound = append(si.ExRound, inst.hist.exRound[b].Load())
					si.ExVal = append(si.ExVal, inst.hist.exVal[b].Load())
					p.counts[b] = counts[b]
				}
				if dcount != 0 {
					si.Count = dcount
					si.Sum = sum - p.sum
					p.sum = sum
					changed = true
				}
			}
			if changed {
				sf.Instruments = append(sf.Instruments, si)
			}
		}
		if len(sf.Instruments) > 0 {
			s.Families = append(s.Families, sf)
		}
	}
	if len(s.Families) == 0 {
		return nil
	}
	return s.Encode()
}
