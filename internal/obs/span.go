package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gradsec/gradsec/internal/simclock"
)

// TraceSink writes round/phase spans as JSONL, one object per line:
//
//	{"span":"broadcast","round":3,"start_us":120,"dur_us":450}
//
// Timestamps come from the injected simclock.WallClock, so a sink built
// on a flsim virtual clock produces bit-identical output across runs of
// the same scenario. A nil TraceSink discards spans at zero cost.
type TraceSink struct {
	clock simclock.WallClock
	epoch time.Time
	trace atomic.Uint64

	mu  sync.Mutex
	w   io.Writer
	err error
}

// RoundTrace derives the deterministic round-scoped trace ID the root
// tier mints and every tier below stamps on its spans. It is a pure
// function of the round number (Fibonacci-hash spread so IDs are
// visually distinct), never random — flsim's byte-identical-trace
// property depends on reruns minting identical IDs.
func RoundTrace(round int) uint64 {
	return (uint64(int64(round)) + 1) * 0x9E3779B97F4A7C15
}

// SetTrace sets the trace ID stamped on spans started from now on;
// 0 clears it (spans then omit the trace field, which keeps existing
// single-process span streams byte-identical). Nil-safe.
func (t *TraceSink) SetTrace(id uint64) {
	if t == nil {
		return
	}
	t.trace.Store(id)
}

// NewTraceSink creates a sink writing JSONL spans to w, timed on clock
// (simclock.Real() when nil). Returns nil when w is nil, so callers can
// pass an optional writer straight through.
func NewTraceSink(w io.Writer, clock simclock.WallClock) *TraceSink {
	if w == nil {
		return nil
	}
	if clock == nil {
		clock = simclock.Real()
	}
	return &TraceSink{clock: clock, epoch: clock.Now(), w: w}
}

// Err returns the first write error the sink swallowed, if any.
// Span export must never fail a round, so errors are sticky and
// queryable rather than propagated.
func (t *TraceSink) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one in-flight timed region. Obtain via TraceSink.Start; a nil
// Span (from a nil sink) makes Start/End free no-ops.
type Span struct {
	sink  *TraceSink
	name  string
	round int
	trace uint64
	start time.Time
}

// Start opens a span for a named phase of a round. End writes it. The
// sink's current trace ID is captured at start, so a span straddling a
// trace change keeps the ID of the round it belongs to.
func (t *TraceSink) Start(name string, round int) *Span {
	if t == nil {
		return nil
	}
	return &Span{sink: t, name: name, round: round, trace: t.trace.Load(), start: t.clock.Now()}
}

// End closes the span and writes its JSONL record. Durations and start
// offsets are microseconds relative to the sink's construction time,
// which pins virtual-clock traces to a stable epoch.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.sink
	now := t.clock.Now()
	startUS := s.start.Sub(t.epoch).Microseconds()
	durUS := now.Sub(s.start).Microseconds()
	t.mu.Lock()
	if t.err == nil {
		var err error
		if s.trace != 0 {
			_, err = fmt.Fprintf(t.w, "{\"span\":%q,\"round\":%d,\"start_us\":%d,\"dur_us\":%d,\"trace\":\"%016x\"}\n",
				s.name, s.round, startUS, durUS, s.trace)
		} else {
			_, err = fmt.Fprintf(t.w, "{\"span\":%q,\"round\":%d,\"start_us\":%d,\"dur_us\":%d}\n",
				s.name, s.round, startUS, durUS)
		}
		if err != nil {
			t.err = err
		}
	}
	t.mu.Unlock()
}
