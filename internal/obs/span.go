package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/gradsec/gradsec/internal/simclock"
)

// TraceSink writes round/phase spans as JSONL, one object per line:
//
//	{"span":"broadcast","round":3,"start_us":120,"dur_us":450}
//
// Timestamps come from the injected simclock.WallClock, so a sink built
// on a flsim virtual clock produces bit-identical output across runs of
// the same scenario. A nil TraceSink discards spans at zero cost.
type TraceSink struct {
	clock simclock.WallClock
	epoch time.Time

	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTraceSink creates a sink writing JSONL spans to w, timed on clock
// (simclock.Real() when nil). Returns nil when w is nil, so callers can
// pass an optional writer straight through.
func NewTraceSink(w io.Writer, clock simclock.WallClock) *TraceSink {
	if w == nil {
		return nil
	}
	if clock == nil {
		clock = simclock.Real()
	}
	return &TraceSink{clock: clock, epoch: clock.Now(), w: w}
}

// Err returns the first write error the sink swallowed, if any.
// Span export must never fail a round, so errors are sticky and
// queryable rather than propagated.
func (t *TraceSink) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one in-flight timed region. Obtain via TraceSink.Start; a nil
// Span (from a nil sink) makes Start/End free no-ops.
type Span struct {
	sink  *TraceSink
	name  string
	round int
	start time.Time
}

// Start opens a span for a named phase of a round. End writes it.
func (t *TraceSink) Start(name string, round int) *Span {
	if t == nil {
		return nil
	}
	return &Span{sink: t, name: name, round: round, start: t.clock.Now()}
}

// End closes the span and writes its JSONL record. Durations and start
// offsets are microseconds relative to the sink's construction time,
// which pins virtual-clock traces to a stable epoch.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.sink
	now := t.clock.Now()
	startUS := s.start.Sub(t.epoch).Microseconds()
	durUS := now.Sub(s.start).Microseconds()
	t.mu.Lock()
	if t.err == nil {
		_, err := fmt.Fprintf(t.w, "{\"span\":%q,\"round\":%d,\"start_us\":%d,\"dur_us\":%d}\n",
			s.name, s.round, startUS, durUS)
		if err != nil {
			t.err = err
		}
	}
	t.mu.Unlock()
}
