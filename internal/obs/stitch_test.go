package obs

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"io"
	"math/big"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/simclock"
)

// testCertFiles writes a throwaway self-signed loopback certificate and
// key into the test's temp dir.
func testCertFiles(t *testing.T) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "gradsec-admin-test"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

func TestStitchSpansDeterministicTimeline(t *testing.T) {
	// Two tiers on one virtual clock, sharing a minted round trace ID —
	// the flsim arrangement in miniature.
	emit := func() (root, edge string) {
		clk := simclock.NewVirtual(time.Unix(0, 0))
		var rb, eb bytes.Buffer
		rs := NewTraceSink(&rb, clk)
		es := NewTraceSink(&eb, clk)
		for round := 0; round < 2; round++ {
			id := RoundTrace(round)
			rs.SetTrace(id)
			es.SetTrace(id)
			rr := rs.Start("hier_round", round)
			clk.Advance(100 * time.Microsecond)
			er := es.Start("round", round)
			clk.Advance(500 * time.Microsecond)
			er.End()
			clk.Advance(50 * time.Microsecond)
			rr.End()
		}
		return rb.String(), eb.String()
	}
	stitch := func(root, edge string) string {
		var out bytes.Buffer
		err := StitchSpans(&out,
			SpanSource{Name: "root", R: strings.NewReader(root)},
			SpanSource{Name: "edge-000", R: strings.NewReader(edge)})
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}

	r1, e1 := emit()
	r2, e2 := emit()
	a, b := stitch(r1, e1), stitch(r2, e2)
	if a != b {
		t.Fatalf("stitched timelines differ across reruns:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 stitched spans, got %d:\n%s", len(lines), a)
	}
	// Causal order: root opens the round, the edge span nests inside it,
	// and every line names its source and carries the shared trace ID.
	if !strings.Contains(lines[0], `"src":"root"`) || !strings.Contains(lines[1], `"src":"edge-000"`) {
		t.Fatalf("timeline order wrong:\n%s", a)
	}
	for i, line := range lines {
		round := 0
		if i >= 2 {
			round = 1
		}
		want := RoundTrace(round)
		if !strings.Contains(line, `"trace":`) {
			t.Fatalf("line %d missing trace ID:\n%s", i, a)
		}
		var buf [16]byte
		hex := "0123456789abcdef"
		for j := 0; j < 16; j++ {
			buf[15-j] = hex[(want>>(4*j))&0xF]
		}
		if !strings.Contains(line, string(buf[:])) {
			t.Fatalf("line %d carries wrong trace ID (want %016x):\n%s", i, want, a)
		}
	}
}

func TestStitchSpansRejectsCorruptLine(t *testing.T) {
	var out bytes.Buffer
	err := StitchSpans(&out, SpanSource{Name: "x", R: strings.NewReader("{\"span\":1}\n")})
	if err == nil {
		t.Fatal("corrupt span line must fail stitching")
	}
}

func TestAdminRefusesExposedBind(t *testing.T) {
	if _, err := ServeAdmin("0.0.0.0:0", nil, nil); err == nil {
		t.Fatal("wildcard bind without token must be refused")
	}
	if _, err := ServeAdminSecure(":0", nil, nil, AdminSecurity{}); err == nil {
		t.Fatal("empty-host bind without token must be refused")
	}
	a, err := ServeAdminSecure("0.0.0.0:0", NewRegistry(), nil, AdminSecurity{Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
}

func TestAdminBearerToken(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "ups").Inc()
	a, err := ServeAdminSecure("127.0.0.1:0", r, nil, AdminSecurity{Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	get := func(auth string) int {
		req, _ := http.NewRequest("GET", "http://"+a.Addr()+"/metrics", nil)
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated request got %d, want 401", code)
	}
	if code := get("Bearer wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong token got %d, want 401", code)
	}
	if code := get("Bearer s3cret"); code != http.StatusOK {
		t.Fatalf("valid token got %d, want 200", code)
	}
}

func TestAdminTLS(t *testing.T) {
	cert, key := testCertFiles(t)
	r := NewRegistry()
	r.Counter("up_total", "ups").Inc()
	a, err := ServeAdminSecure("127.0.0.1:0", r, nil,
		AdminSecurity{Token: "s3cret", CertFile: cert, KeyFile: key})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	client := &http.Client{Transport: &http.Transport{
		TLSClientConfig: &tls.Config{InsecureSkipVerify: true},
	}}
	req, _ := http.NewRequest("GET", "https://"+a.Addr()+"/metrics", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("TLS scrape failed: %d %q", resp.StatusCode, body)
	}
}
