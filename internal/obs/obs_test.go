package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/simclock"
)

func TestRegistryIdentityAndNil(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("rounds_total", "rounds", "mode", "sync")
	c2 := r.Counter("rounds_total", "rounds", "mode", "sync")
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	c3 := r.Counter("rounds_total", "rounds", "mode", "async")
	if c1 == c3 {
		t.Fatal("different label values must return distinct counters")
	}
	c1.Inc()
	c1.Add(2)
	if c1.Value() != 3 || c3.Value() != 0 {
		t.Fatalf("counter values wrong: %d, %d", c1.Value(), c3.Value())
	}
	g := r.Gauge("roster", "roster size")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge value %d, want 7", g.Value())
	}

	var nr *Registry
	nc := nr.Counter("x", "x")
	nc.Inc() // nil-safe
	ng := nr.Gauge("x", "x")
	ng.Set(1)
	nh := nr.Histogram("x", "x")
	nh.Observe(1)
	if nc != nil || ng != nil || nh != nil {
		t.Fatal("nil registry must return nil instruments")
	}
}

// parseExposition parses Prometheus text format into sample name+labels
// → value, validating the line grammar as it goes. Bucket lines may
// carry an OpenMetrics-style exemplar suffix (` # {round="3"} 42`),
// which is validated and stripped before the sample value is parsed.
func parseExposition(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, " # "); i >= 0 {
			ex := line[i+3:]
			if !strings.HasPrefix(ex, "{") || !strings.Contains(ex, "} ") {
				t.Fatalf("malformed exemplar in %q", line)
			}
			line = line[:i]
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			t.Fatalf("non-integer sample value in %q: %v", line, err)
		}
		if strings.Contains(key, "{") && !strings.HasSuffix(key, "}") {
			t.Fatalf("unterminated label set in %q", line)
		}
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		out[key] = v
	}
	return out
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("fl_rounds_total", "rounds closed", "result", "ok").Add(5)
	r.Counter("fl_rounds_total", "rounds closed", "result", "failed").Add(1)
	r.Gauge("fl_roster", "roster size").Set(12)
	h := r.Histogram("fl_phase_ns", "phase latency", "phase", "broadcast")
	for _, v := range []int64{10, 100, 1000, 100000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples := parseExposition(t, text)

	if samples[`fl_rounds_total{result="ok"}`] != 5 {
		t.Fatalf("ok counter missing/wrong in:\n%s", text)
	}
	if samples[`fl_rounds_total{result="failed"}`] != 1 {
		t.Fatalf("failed counter missing/wrong in:\n%s", text)
	}
	if samples[`fl_roster`] != 12 {
		t.Fatalf("gauge missing/wrong in:\n%s", text)
	}
	if samples[`fl_phase_ns_count{phase="broadcast"}`] != 4 {
		t.Fatalf("histogram count wrong in:\n%s", text)
	}
	if samples[`fl_phase_ns_sum{phase="broadcast"}`] != 101110 {
		t.Fatalf("histogram sum wrong in:\n%s", text)
	}
	if samples[`fl_phase_ns_bucket{phase="broadcast",le="+Inf"}`] != 4 {
		t.Fatalf("+Inf bucket wrong in:\n%s", text)
	}
	if samples[`fl_phase_ns_bucket{phase="broadcast",le="63"}`] != 1 {
		t.Fatalf("le=63 bucket wrong in:\n%s", text)
	}
	// Cumulative buckets must be monotone non-decreasing in le.
	prev := int64(-1)
	for _, le := range []string{"63", "127", "255", "511", "1023"} {
		key := fmt.Sprintf("fl_phase_ns_bucket{phase=%q,le=%q}", "broadcast", le)
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", key, text)
		}
		if v < prev {
			t.Fatalf("bucket counts not monotone at le=%s", le)
		}
		prev = v
	}
	// TYPE lines present for each family.
	for _, want := range []string{
		"# TYPE fl_rounds_total counter",
		"# TYPE fl_roster gauge",
		"# TYPE fl_phase_ns histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestTraceSinkDeterministicOnVirtualClock(t *testing.T) {
	run := func() string {
		clk := simclock.NewVirtual(time.Unix(0, 0))
		var buf bytes.Buffer
		sink := NewTraceSink(&buf, clk)
		for round := 0; round < 3; round++ {
			sp := sink.Start("round", round)
			p := sink.Start("broadcast", round)
			clk.Advance(1500 * time.Microsecond)
			p.End()
			sp.End()
		}
		if sink.Err() != nil {
			t.Fatal(sink.Err())
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual-clock traces differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `{"span":"broadcast","round":1,"start_us":1500,"dur_us":1500}`) {
		t.Fatalf("unexpected trace content:\n%s", a)
	}
	if got := strings.Count(a, "\n"); got != 6 {
		t.Fatalf("want 6 JSONL lines, got %d", got)
	}

	// Nil sink and nil span are free no-ops.
	var ns *TraceSink
	ns.Start("x", 0).End()
	if NewTraceSink(nil, nil) != nil {
		t.Fatal("nil writer must yield nil sink")
	}
}

func TestAdminEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "ups").Inc()
	health := func() Health {
		return Health{Open: true, Round: 3, Roster: 8, Quarantined: 1, JournalLag: 2}
	}
	a, err := ServeAdmin("127.0.0.1:0", r, health)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + a.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "up_total 1") {
		t.Fatalf("metrics missing counter:\n%s", metrics)
	}
	healthz := get("/healthz")
	for _, want := range []string{`"open":true`, `"round":3`, `"roster":8`, `"quarantined":1`, `"journal_lag":2`} {
		if !strings.Contains(healthz, want) {
			t.Fatalf("healthz missing %s: %s", want, healthz)
		}
	}
	if pprofIdx := get("/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Fatal("pprof index not served")
	}
}

// TestDisabledInstrumentsZeroAlloc pins the subsystem's core contract:
// with observability off, every instrument reference is nil and every
// operation on it — the exact calls the engine hot paths make — is a
// zero-allocation no-op. A regression here taxes every deployment that
// never asked for telemetry.
func TestDisabledInstrumentsZeroAlloc(t *testing.T) {
	var (
		c    *Counter
		g    *Gauge
		h    *Histogram
		sink *TraceSink
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-1)
		h.Observe(42)
		h.ObserveEx(42, 3)
		sink.SetTrace(7)
		span := sink.Start("round", 1)
		span.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocate %.1f times per op, want 0", allocs)
	}
}
