package obs

import (
	"os"
	"sync/atomic"
)

// Telemetry bundles the optional observability surfaces a CLI process
// wires from its -admin and -spans flags: the metrics registry exported
// by the admin listener and the JSONL span export. Each field is nil
// when the corresponding flag is off, so the engines it is handed to
// run their zero-cost disabled paths.
type Telemetry struct {
	// Metrics is the process registry, nil unless an admin address was
	// given — pass it straight into ServerConfig.Metrics and friends.
	Metrics *Registry
	// Spans is the span export sink, nil unless a span path was given.
	Spans *TraceSink
	// Security configures admin auth/TLS; set it (from -admin-token /
	// -admin-cert / -admin-key flags) before calling Serve.
	Security AdminSecurity

	admin    *Admin
	spanFile *os.File
	closed   atomic.Bool
}

// OpenTelemetry prepares the surfaces selected by the flags. Empty
// strings disable the corresponding surface; spans are timed on the
// wall clock.
func OpenTelemetry(adminAddr, spansPath string) (*Telemetry, error) {
	t := &Telemetry{}
	if adminAddr != "" {
		t.Metrics = NewRegistry()
	}
	if spansPath != "" {
		f, err := os.Create(spansPath)
		if err != nil {
			return nil, err
		}
		t.spanFile = f
		t.Spans = NewTraceSink(f, nil)
	}
	return t, nil
}

// Serve starts the admin HTTP listener when addr is non-empty and
// returns the bound address ("" when disabled). The health callback
// may be nil.
func (t *Telemetry) Serve(addr string, health func() Health) (string, error) {
	if addr == "" {
		return "", nil
	}
	a, err := ServeAdminSecure(addr, t.Metrics, health, t.Security)
	if err != nil {
		return "", err
	}
	t.admin = a
	return a.Addr(), nil
}

// Close stops the admin listener and flushes the span export,
// returning the first span-write error encountered during the
// session, if any. Safe to call more than once; later calls are
// no-ops returning nil.
func (t *Telemetry) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	if t.admin != nil {
		_ = t.admin.Close()
	}
	var err error
	if t.spanFile != nil {
		err = t.Spans.Err()
		if cerr := t.spanFile.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
