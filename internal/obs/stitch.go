package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SpanSource names one JSONL span stream for stitching — typically one
// process's -spans file, with Name identifying the tier ("root",
// "edge-000", "client-17").
type SpanSource struct {
	Name string
	R    io.Reader
}

// stitchRec is a parsed span line plus its source, the unit the
// stitcher sorts and re-emits. Unknown JSON fields are ignored so the
// stitcher tolerates future span schema additions.
type stitchRec struct {
	Src     string `json:"src"`
	Span    string `json:"span"`
	Round   int    `json:"round"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Trace   string `json:"trace,omitempty"`
}

// StitchSpans joins per-process JSONL span streams into one causal
// round timeline: every line gains a "src" field naming its source, and
// the merged stream is ordered by start time (ties broken by source
// name, span name, round, then duration — a total deterministic order,
// so stitching the same inputs always yields byte-identical output).
// Spans from different rounds interleave naturally; the shared trace ID
// minted by the root correlates each round's spans across tiers.
//
// Start offsets are relative to each sink's own construction epoch.
// Under flsim every sink shares the scenario's virtual clock epoch, so
// offsets are directly comparable; for real processes started at
// different times the trace ID — not the clock — is the correlation
// key.
func StitchSpans(w io.Writer, sources ...SpanSource) error {
	var recs []stitchRec
	for _, src := range sources {
		sc := bufio.NewScanner(src.R)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			b := sc.Bytes()
			if len(b) == 0 {
				continue
			}
			var r stitchRec
			if err := json.Unmarshal(b, &r); err != nil {
				return fmt.Errorf("obs: stitch %s line %d: %w", src.Name, line, err)
			}
			r.Src = src.Name
			recs = append(recs, r)
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("obs: stitch %s: %w", src.Name, err)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.DurUS < b.DurUS
	})
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return nil
}
