package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// oracleQuantile mirrors Histogram.Quantile's rank convention
// (ceil(q·n), 1-based) against the true sorted samples, then maps the
// chosen sample through the bucket layout — the histogram must agree
// exactly, since both pick the same rank and the same bucket bounds.
func oracleQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return bucketUpper(bucketOf(sorted[rank-1]))
}

func TestBucketRoundTrip(t *testing.T) {
	// Every representable value must land in a bucket whose bounds
	// contain it, and bucket indices must be monotone in the value.
	vals := []int64{0, 1, 2, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 7}
	prev := -1
	for _, v := range vals {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		up := bucketUpper(b)
		if v > up {
			t.Fatalf("value %d above its bucket upper bound %d (bucket %d)", v, up, b)
		}
		if b > 0 && v <= bucketUpper(b-1) {
			t.Fatalf("value %d also fits bucket %d (upper %d)", v, b-1, bucketUpper(b-1))
		}
	}
	if bucketOf(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

func TestHistogramQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		h := NewHistogram()
		samples := make([]int64, n)
		for i := range samples {
			// Mix scales: small exact-region values, mid-range, huge.
			switch rng.Intn(3) {
			case 0:
				samples[i] = int64(rng.Intn(linearMax))
			case 1:
				samples[i] = rng.Int63n(1 << 20)
			default:
				samples[i] = rng.Int63()
			}
			h.Observe(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			got := h.Quantile(q)
			want := oracleQuantile(samples, q)
			if got != want {
				t.Fatalf("trial %d n=%d q=%g: histogram %d, oracle %d", trial, n, q, got, want)
			}
		}
		var sum int64
		for _, v := range samples {
			sum += v
		}
		if h.Count() != uint64(n) || h.Sum() != sum {
			t.Fatalf("count/sum mismatch: %d/%d vs %d/%d", h.Count(), h.Sum(), n, sum)
		}
	}
}

func TestHistogramMergeVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a, b := NewHistogram(), NewHistogram()
		var all []int64
		for i := 0; i < 100+rng.Intn(200); i++ {
			v := rng.Int63n(1 << 30)
			all = append(all, v)
			if i%2 == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
		}
		a.Merge(b)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			if got, want := a.Quantile(q), oracleQuantile(all, q); got != want {
				t.Fatalf("trial %d q=%g: merged %d, oracle %d", trial, q, got, want)
			}
		}
		if a.Count() != uint64(len(all)) {
			t.Fatalf("merged count %d, want %d", a.Count(), len(all))
		}
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.Merge(NewHistogram())
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must report zeros")
	}
	e := NewHistogram()
	if e.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	e.Merge(nil) // must not panic
}

func TestHistogramRelativeError(t *testing.T) {
	// Above the exact region the bucket upper bound overshoots the true
	// value by at most 1/subCount.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := linearMax + rng.Int63n(1<<50)
		up := bucketUpper(bucketOf(v))
		if up < v {
			t.Fatalf("upper bound %d below sample %d", up, v)
		}
		if float64(up-v) > float64(v)/subCount+1 {
			t.Fatalf("relative error too large: v=%d upper=%d", v, up)
		}
	}
}
