package obs

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestHistogramMergeWhileObserving pins the snapshot/merge consistency
// fix: merging from a histogram that is concurrently being observed
// must still produce a destination whose count equals the sum of its
// buckets. Run under -race this also proves the merge path is
// data-race-free against live observers.
func TestHistogramMergeWhileObserving(t *testing.T) {
	src := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					src.ObserveEx(rng.Int63n(1<<30), int(rng.Int63n(100)))
				}
			}
		}(int64(g))
	}
	for i := 0; i < 200; i++ {
		dst := NewHistogram()
		dst.Merge(src)
		counts, _, _ := dst.snapshot()
		var total uint64
		for _, n := range counts {
			total += n
		}
		if got := dst.Count(); got != total {
			t.Fatalf("iteration %d: merged count %d != sum of buckets %d", i, got, total)
		}
	}
	close(stop)
	wg.Wait()
}

// fillRegistry populates a registry with a deterministic mixed workload.
func fillRegistry(reg *Registry, seed int64, rounds int) {
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rounds; r++ {
		reg.Counter("t_rounds_total", "rounds", "result", "ok").Inc()
		reg.Gauge("t_roster", "roster").Set(rng.Int63n(100))
		for _, phase := range []string{"broadcast", "collect"} {
			h := reg.Histogram("t_phase_ns", "phase latency", "phase", phase)
			for i := 0; i < 1+rng.Intn(5); i++ {
				h.ObserveEx(rng.Int63n(1<<40), r)
			}
		}
	}
}

// flatten renders a registry's exposition for comparison.
func flatten(t *testing.T, reg *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSnapshotRoundTrip(t *testing.T) {
	reg := NewRegistry()
	fillRegistry(reg, 11, 20)
	snap := TakeSnapshot(reg)
	enc := snap.Encode()
	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, dec) {
		t.Fatalf("snapshot round-trip mismatch:\n%#v\nvs\n%#v", snap, dec)
	}
	// Merging the decoded snapshot into an empty registry reproduces the
	// original exposition exactly (no extra labels).
	dst := NewRegistry()
	dst.MergeSnapshot(dec)
	if a, b := flatten(t, reg), flatten(t, dst); a != b {
		t.Fatalf("merged exposition differs:\n%s\nvs\n%s", a, b)
	}
}

// TestSnapshotMergeCommutes is the merge-then-encode == encode-then-
// merge property: folding N live registries into one and snapshotting
// equals snapshotting each and folding the snapshots — the guarantee
// that makes fleet-wide families exact regardless of where the fold
// happens.
func TestSnapshotMergeCommutes(t *testing.T) {
	const parts = 4
	regs := make([]*Registry, parts)
	for i := range regs {
		regs[i] = NewRegistry()
		fillRegistry(regs[i], int64(100+i), 10+i)
	}

	// Path A: merge decoded snapshots into one registry.
	viaSnapshots := NewRegistry()
	for _, reg := range regs {
		dec, err := DecodeSnapshot(TakeSnapshot(reg).Encode())
		if err != nil {
			t.Fatal(err)
		}
		viaSnapshots.MergeSnapshot(dec)
	}

	// Path B: replay all workloads into one registry directly.
	direct := NewRegistry()
	for i := range regs {
		fillRegistry(direct, int64(100+i), 10+i)
	}

	// Counters and histogram buckets must agree exactly. Gauges are
	// last-writer-wins and t_roster differs by fold order, so compare
	// the histogram family and counters through the exposition with the
	// gauge family removed.
	strip := func(text string) string {
		var keep []string
		for _, line := range strings.Split(text, "\n") {
			if strings.Contains(line, "t_roster") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if a, b := strip(flatten(t, viaSnapshots)), strip(flatten(t, direct)); a != b {
		t.Fatalf("merge does not commute with encode:\n%s\nvs\n%s", a, b)
	}
}

func TestSnapshotterDeltas(t *testing.T) {
	reg := NewRegistry()
	sn := NewSnapshotter(reg)
	if b := sn.Delta(); b != nil {
		t.Fatalf("empty registry must yield nil delta, got %d bytes", len(b))
	}

	upstream := NewRegistry()
	fillRegistry(reg, 5, 3)
	d1 := sn.Delta()
	if d1 == nil {
		t.Fatal("first delta missing")
	}
	s1, err := DecodeSnapshot(d1)
	if err != nil {
		t.Fatal(err)
	}
	upstream.MergeSnapshot(s1, "tier", "edge", "shard", "edge-000")

	// No activity → nothing to send.
	if b := sn.Delta(); b != nil {
		t.Fatalf("quiet period must yield nil delta, got %d bytes", len(b))
	}

	fillRegistry(reg, 6, 2)
	d2 := sn.Delta()
	s2, err := DecodeSnapshot(d2)
	if err != nil {
		t.Fatal(err)
	}
	upstream.MergeSnapshot(s2, "tier", "edge", "shard", "edge-000")

	// Successive deltas folded upstream equal one cumulative fold: the
	// counter and histogram totals must match the live registry.
	wantRounds := reg.Counter("t_rounds_total", "rounds", "result", "ok").Value()
	gotRounds := upstream.Counter("t_rounds_total", "rounds", "result", "ok", "tier", "edge", "shard", "edge-000").Value()
	if gotRounds != wantRounds {
		t.Fatalf("upstream counter %d, want %d", gotRounds, wantRounds)
	}
	for _, phase := range []string{"broadcast", "collect"} {
		want := reg.Histogram("t_phase_ns", "phase latency", "phase", phase)
		got := upstream.Histogram("t_phase_ns", "phase latency", "phase", phase, "tier", "edge", "shard", "edge-000")
		if got.Count() != want.Count() || got.Sum() != want.Sum() {
			t.Fatalf("phase %s: upstream %d/%d, want %d/%d", phase, got.Count(), got.Sum(), want.Count(), want.Sum())
		}
	}
}

// TestMergeSnapshotLabelPassThrough pins the innermost-origin-wins
// policy: extra provenance keys already present in a family's schema
// are not re-applied, so client-tier labels survive transit through the
// edge and root unchanged.
func TestMergeSnapshotLabelPassThrough(t *testing.T) {
	client := NewRegistry()
	client.Counter("t_client_steps_total", "steps").Add(7)

	edge := NewRegistry()
	edge.MergeSnapshot(TakeSnapshot(client), "tier", "client", "shard", "device-3")

	root := NewRegistry()
	root.MergeSnapshot(TakeSnapshot(edge), "tier", "edge", "shard", "edge-001")

	got := root.Counter("t_client_steps_total", "steps", "tier", "client", "shard", "device-3").Value()
	if got != 7 {
		t.Fatalf("client labels were rewritten in transit: %s", flatten(t, root))
	}
}

// TestDecodeSnapshotHostile feeds structurally corrupt telemetry blobs
// to the decoder; every case must fail cleanly (error, no panic, no
// huge allocation).
func TestDecodeSnapshotHostile(t *testing.T) {
	valid := func() []byte {
		reg := NewRegistry()
		fillRegistry(reg, 3, 5)
		return TakeSnapshot(reg).Encode()
	}()
	cases := map[string][]byte{
		"empty":            {},
		"bad version":      {0xEE, 0x00},
		"huge family list": {snapshotVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"truncated":        valid[:len(valid)/2],
		"trailing bytes":   append(append([]byte{}, valid...), 0x01),
	}
	for name, data := range cases {
		if s, err := DecodeSnapshot(data); err == nil {
			t.Fatalf("%s: decode accepted hostile input: %#v", name, s)
		}
	}
	// Bit flips anywhere must never panic.
	for i := 0; i < len(valid); i++ {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0x80
		_, _ = DecodeSnapshot(mut)
	}
}

func FuzzTelemetryDecode(f *testing.F) {
	reg := NewRegistry()
	fillRegistry(reg, 9, 8)
	f.Add(TakeSnapshot(reg).Encode())
	f.Add([]byte{snapshotVersion, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Anything that decodes must merge without panicking, and
		// re-encode to something that decodes again.
		dst := NewRegistry()
		dst.MergeSnapshot(s, "tier", "fuzz")
		if _, err := DecodeSnapshot(TakeSnapshot(dst).Encode()); err != nil {
			t.Fatalf("re-encode of merged fuzz input does not decode: %v", err)
		}
	})
}
