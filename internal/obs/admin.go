package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz payload: a point-in-time summary of session
// state assembled by the process hosting the admin listener.
type Health struct {
	// Open reports whether a federation session is currently running.
	Open bool `json:"open"`
	// Round is the current round (sync) or model version (async).
	Round int `json:"round"`
	// Rounds is the configured total, 0 when unbounded/unknown.
	Rounds int `json:"rounds,omitempty"`
	// Roster is the number of admitted devices.
	Roster int `json:"roster"`
	// Quarantined and Probation count excluded and probationed devices.
	Quarantined int `json:"quarantined"`
	Probation   int `json:"probation"`
	// JournalLag is the number of journal records appended since the
	// last fsync — durability exposure if the process dies now.
	JournalLag int `json:"journal_lag"`
}

// Admin is a running admin HTTP listener serving Prometheus metrics at
// /metrics, liveness at /healthz, and the runtime profiler under
// /debug/pprof/. It binds its own mux — never http.DefaultServeMux —
// so importing callers cannot accidentally expose these handlers on an
// application listener.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts the admin endpoint on addr (e.g. "127.0.0.1:9090",
// ":0" for an ephemeral port). reg may be nil (metrics export is then
// empty) and health may be nil (healthz reports a zero Health). The
// listener runs until Close.
func ServeAdmin(addr string, reg *Registry, health func() Health) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var h Health
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close shuts the listener down.
func (a *Admin) Close() error { return a.srv.Close() }
