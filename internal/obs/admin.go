package obs

import (
	"crypto/subtle"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Health is the /healthz payload: a point-in-time summary of session
// state assembled by the process hosting the admin listener.
type Health struct {
	// Open reports whether a federation session is currently running.
	Open bool `json:"open"`
	// Round is the current round (sync) or model version (async).
	Round int `json:"round"`
	// Rounds is the configured total, 0 when unbounded/unknown.
	Rounds int `json:"rounds,omitempty"`
	// Roster is the number of admitted devices.
	Roster int `json:"roster"`
	// Quarantined and Probation count excluded and probationed devices.
	Quarantined int `json:"quarantined"`
	Probation   int `json:"probation"`
	// JournalLag is the number of journal records appended since the
	// last fsync — durability exposure if the process dies now.
	JournalLag int `json:"journal_lag"`
}

// Admin is a running admin HTTP listener serving Prometheus metrics at
// /metrics, liveness at /healthz, and the runtime profiler under
// /debug/pprof/. It binds its own mux — never http.DefaultServeMux —
// so importing callers cannot accidentally expose these handlers on an
// application listener.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// AdminSecurity configures authentication and transport security for
// the admin listener. The zero value (no token, no TLS) is only
// accepted for loopback binds: the surface exposes pprof and session
// state, so a non-loopback bind without a bearer token is refused.
type AdminSecurity struct {
	// Token, when non-empty, requires `Authorization: Bearer <Token>`
	// on every request (constant-time comparison).
	Token string
	// CertFile/KeyFile, when both non-empty, serve the endpoint over
	// TLS with the given PEM certificate and key.
	CertFile string
	KeyFile  string
}

// ErrAdminExposed is returned when a non-loopback admin bind is
// attempted without a bearer token.
var ErrAdminExposed = errors.New("obs: refusing non-loopback admin bind without -admin-token")

// loopbackAddr reports whether addr binds only a loopback interface.
// A wildcard host (":9090") binds every interface and is not loopback.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// ServeAdmin starts the admin endpoint on addr (e.g. "127.0.0.1:9090",
// "127.0.0.1:0" for an ephemeral port). reg may be nil (metrics export
// is then empty) and health may be nil (healthz reports a zero Health).
// The listener runs until Close. Plain ServeAdmin carries no
// credentials, so it only accepts loopback binds; use ServeAdminSecure
// for anything reachable off-host.
func ServeAdmin(addr string, reg *Registry, health func() Health) (*Admin, error) {
	return ServeAdminSecure(addr, reg, health, AdminSecurity{})
}

// ServeAdminSecure is ServeAdmin with bearer-token auth and optional
// TLS. Non-loopback binds are refused unless sec.Token is set.
func ServeAdminSecure(addr string, reg *Registry, health func() Health, sec AdminSecurity) (*Admin, error) {
	if sec.Token == "" && !loopbackAddr(addr) {
		return nil, fmt.Errorf("%w (addr %q)", ErrAdminExposed, addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if sec.CertFile != "" || sec.KeyFile != "" {
		cert, err := tls.LoadX509KeyPair(sec.CertFile, sec.KeyFile)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("obs: admin TLS: %w", err)
		}
		ln = tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var h Health
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	var handler http.Handler = mux
	if sec.Token != "" {
		handler = bearerAuth(sec.Token, mux)
	}
	a := &Admin{ln: ln, srv: &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// bearerAuth rejects every request lacking the exact bearer token with
// 401. The comparison is constant-time so the token cannot be probed
// byte by byte through response timing.
func bearerAuth(token string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="gradsec-admin"`)
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Addr returns the bound listen address (useful with ":0").
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close shuts the listener down.
func (a *Admin) Close() error { return a.srv.Close() }
