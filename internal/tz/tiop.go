package tz

import (
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Trusted I/O path (§7.3 of the paper): protected layer weights arrive
// from the FL server and protected gradients leave the device through a
// channel whose plaintext is never visible to the normal world. We model
// it as an X25519-agreed, AES-256-GCM-sealed, replay-protected channel
// between the FL server and the TA. Normal-world code relays only
// ciphertext.

// TIOP errors.
var (
	ErrChannelReplay = errors.New("tz: trusted channel replay or reordering detected")
	ErrChannelAuth   = errors.New("tz: trusted channel authentication failed")
)

// Channel is one endpoint of an established trusted I/O path.
type Channel struct {
	mu      sync.Mutex
	sendKey [32]byte
	recvKey [32]byte
	sendSeq uint64
	recvSeq uint64
}

// ChannelOffer is the public handshake half: an ephemeral X25519 public key.
type ChannelOffer struct {
	Public []byte
	priv   *ecdh.PrivateKey
}

// NewChannelOffer generates an ephemeral keypair for the handshake.
func NewChannelOffer() (*ChannelOffer, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tz: generating channel key: %w", err)
	}
	return &ChannelOffer{Public: priv.PublicKey().Bytes(), priv: priv}, nil
}

// Establish completes the handshake against the peer's public key.
// initiator must differ between the two sides so the directional keys
// line up.
func (o *ChannelOffer) Establish(peerPublic []byte, initiator bool) (*Channel, error) {
	peer, err := ecdh.X25519().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("tz: bad peer public key: %w", err)
	}
	shared, err := o.priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("tz: ECDH: %w", err)
	}
	kAB := deriveKey(shared, "tiop-a2b", nil)
	kBA := deriveKey(shared, "tiop-b2a", nil)
	ch := &Channel{}
	if initiator {
		ch.sendKey, ch.recvKey = kAB, kBA
	} else {
		ch.sendKey, ch.recvKey = kBA, kAB
	}
	return ch, nil
}

// EstablishPair returns two connected channel endpoints directly (for
// in-process use and tests).
func EstablishPair() (initiator, responder *Channel, err error) {
	a, err := NewChannelOffer()
	if err != nil {
		return nil, nil, err
	}
	b, err := NewChannelOffer()
	if err != nil {
		return nil, nil, err
	}
	initiator, err = a.Establish(b.Public, true)
	if err != nil {
		return nil, nil, err
	}
	responder, err = b.Establish(a.Public, false)
	if err != nil {
		return nil, nil, err
	}
	return initiator, responder, nil
}

// Seal encrypts and authenticates plaintext with the next send sequence
// number. Output layout: seq(8) | ct.
func (c *Channel) Seal(plaintext []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.sendSeq
	c.sendSeq++
	nonce := make([]byte, nonceSize)
	binary.BigEndian.PutUint64(nonce[nonceSize-8:], seq)
	ct := gcmSeal(c.sendKey, nonce, plaintext, nonce[nonceSize-8:])
	out := make([]byte, 8+len(ct))
	binary.BigEndian.PutUint64(out[:8], seq)
	copy(out[8:], ct)
	return out
}

// Open authenticates and decrypts a sealed message, enforcing strictly
// increasing sequence numbers (replay protection).
func (c *Channel) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < 8 {
		return nil, fmt.Errorf("%w: short message", ErrChannelAuth)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := binary.BigEndian.Uint64(sealed[:8])
	if seq < c.recvSeq {
		return nil, fmt.Errorf("%w: seq %d after %d", ErrChannelReplay, seq, c.recvSeq)
	}
	nonce := make([]byte, nonceSize)
	binary.BigEndian.PutUint64(nonce[nonceSize-8:], seq)
	pt, err := gcmOpen(c.recvKey, nonce, sealed[8:], sealed[:8])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChannelAuth, err)
	}
	c.recvSeq = seq + 1
	return pt, nil
}
