package tz

import (
	"errors"
	"fmt"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

// echoTA is a trivial TA used to exercise the session machinery.
type echoTA struct {
	uuid    UUID
	version string
	// leak, when set, makes Invoke return a registered secure tensor —
	// exercising the boundary screen.
	leak *tensor.Tensor
}

func (e *echoTA) UUID() UUID      { return e.uuid }
func (e *echoTA) Version() string { return e.version }

func (e *echoTA) OpenSession(env *TAEnv) (any, error) {
	return map[string]int{"invocations": 0}, nil
}

func (e *echoTA) Invoke(env *TAEnv, state any, cmd uint32, req any) (any, error) {
	st := state.(map[string]int)
	st["invocations"]++
	switch cmd {
	case 1: // echo
		return req, nil
	case 2: // leak a secure tensor
		return e.leak, nil
	case 3: // report invocation count
		return st["invocations"], nil
	default:
		return nil, fmt.Errorf("echoTA: unknown command %d", cmd)
	}
}

func (e *echoTA) CloseSession(env *TAEnv, state any) {}

func newEchoDevice(t *testing.T) (*Device, *echoTA, *Session) {
	t.Helper()
	dev := NewDevice("test-device")
	app := &echoTA{uuid: NameUUID("echo"), version: "1.0"}
	if err := dev.Install(app); err != nil {
		t.Fatal(err)
	}
	sess, err := dev.OpenSession(app.UUID())
	if err != nil {
		t.Fatal(err)
	}
	return dev, app, sess
}

func TestSessionLifecycle(t *testing.T) {
	dev, app, sess := newEchoDevice(t)
	resp, err := sess.Invoke(1, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "hello" {
		t.Fatalf("echo = %v", resp)
	}
	n, err := sess.Invoke(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("invocation count = %v, want 2", n)
	}
	sess.Close()
	if _, err := sess.Invoke(1, "x"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("invoke after close: %v", err)
	}
	// open + 2 invokes + close = 4 crossings pairs = 8 SMCs.
	if got := dev.SMCCount(); got != 8 {
		t.Fatalf("SMC count = %d, want 8", got)
	}
	_ = app
}

func TestOpenSessionUnknownTA(t *testing.T) {
	dev := NewDevice("d")
	if _, err := dev.OpenSession(NameUUID("missing")); !errors.Is(err, ErrUnknownTA) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoubleInstallRejected(t *testing.T) {
	dev := NewDevice("d")
	app := &echoTA{uuid: NameUUID("echo"), version: "1"}
	if err := dev.Install(app); err != nil {
		t.Fatal(err)
	}
	if err := dev.Install(app); !errors.Is(err, ErrAlreadyInstalled) {
		t.Fatalf("second install: %v", err)
	}
}

func TestWorldSwitchChargesKernelTime(t *testing.T) {
	dev, _, sess := newEchoDevice(t)
	before := dev.Clock().Kernel()
	if _, err := sess.Invoke(1, nil); err != nil {
		t.Fatal(err)
	}
	delta := dev.Clock().Kernel() - before
	if want := 2 * dev.Cost().WorldSwitch; delta != want {
		t.Fatalf("kernel delta = %v, want %v", delta, want)
	}
}

func TestSecureLeakDetection(t *testing.T) {
	dev, app, sess := newEchoDevice(t)
	secret := tensor.Full(42, 2, 2)
	dev.SecureMemory().RegisterTensor(secret, "layer2/weights")
	app.leak = secret
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when TA leaks secure tensor")
		}
	}()
	_, _ = sess.Invoke(2, nil)
}

func TestDeclassifiedTensorMayCross(t *testing.T) {
	dev, app, sess := newEchoDevice(t)
	tns := tensor.Full(1, 2, 2)
	dev.SecureMemory().RegisterTensor(tns, "tmp")
	dev.SecureMemory().UnregisterTensor(tns)
	app.leak = tns
	if _, err := sess.Invoke(2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeakDetectionCoversContainers(t *testing.T) {
	dev := NewDevice("d")
	secret := tensor.Full(1, 1)
	dev.SecureMemory().RegisterTensor(secret, "s")
	cases := []any{
		secret,
		[]*tensor.Tensor{nil, secret},
		[][]*tensor.Tensor{{secret}},
		map[string]*tensor.Tensor{"g": secret},
	}
	for i, c := range cases {
		if name := dev.SecureMemory().scanForSecureRefs(c); name != "s" {
			t.Fatalf("case %d: scan = %q, want s", i, name)
		}
	}
	if name := dev.SecureMemory().scanForSecureRefs([]*tensor.Tensor{tensor.Full(1, 1)}); name != "" {
		t.Fatalf("clean tensor flagged: %q", name)
	}
}

func TestNameUUIDDeterministicAndDistinct(t *testing.T) {
	if NameUUID("a") != NameUUID("a") {
		t.Fatal("NameUUID must be deterministic")
	}
	if NameUUID("a") == NameUUID("b") {
		t.Fatal("distinct names must give distinct UUIDs")
	}
	if NameUUID("a").String() == "" {
		t.Fatal("String must render")
	}
}
