package tz

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestChannelRoundTrip(t *testing.T) {
	a, b, err := EstablishPair()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		msg := []byte{byte(i), 1, 2, 3}
		ct := a.Seal(msg)
		pt, err := b.Open(ct)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("msg %d roundtrip = %v", i, pt)
		}
	}
}

func TestChannelBidirectional(t *testing.T) {
	a, b, err := EstablishPair()
	if err != nil {
		t.Fatal(err)
	}
	ct := b.Seal([]byte("up"))
	pt, err := a.Open(ct)
	if err != nil || string(pt) != "up" {
		t.Fatalf("b→a: %q %v", pt, err)
	}
	ct = a.Seal([]byte("down"))
	pt, err = b.Open(ct)
	if err != nil || string(pt) != "down" {
		t.Fatalf("a→b: %q %v", pt, err)
	}
}

func TestChannelReplayRejected(t *testing.T) {
	a, b, err := EstablishPair()
	if err != nil {
		t.Fatal(err)
	}
	ct := a.Seal([]byte("once"))
	if _, err := b.Open(ct); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(ct); !errors.Is(err, ErrChannelReplay) {
		t.Fatalf("replay: %v", err)
	}
}

func TestChannelTamperRejected(t *testing.T) {
	a, b, err := EstablishPair()
	if err != nil {
		t.Fatal(err)
	}
	ct := a.Seal([]byte("payload"))
	ct[len(ct)-1] ^= 1
	if _, err := b.Open(ct); !errors.Is(err, ErrChannelAuth) {
		t.Fatalf("tamper: %v", err)
	}
	// Short message.
	if _, err := b.Open([]byte{1, 2}); !errors.Is(err, ErrChannelAuth) {
		t.Fatalf("short: %v", err)
	}
}

func TestChannelWrongPeer(t *testing.T) {
	a, _, err := EstablishPair()
	if err != nil {
		t.Fatal(err)
	}
	_, c, err := EstablishPair()
	if err != nil {
		t.Fatal(err)
	}
	ct := a.Seal([]byte("x"))
	if _, err := c.Open(ct); !errors.Is(err, ErrChannelAuth) {
		t.Fatalf("cross-channel open: %v", err)
	}
}

// Property: arbitrary payloads round-trip in order.
func TestChannelRoundTripProperty(t *testing.T) {
	a, b, err := EstablishPair()
	if err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte) bool {
		pt, err := b.Open(a.Seal(payload))
		return err == nil && bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAttestationHappyPath(t *testing.T) {
	dev := NewDevice("pi-client-1")
	app := &echoTA{uuid: NameUUID("gradsec"), version: "2.0"}
	if err := dev.Install(app); err != nil {
		t.Fatal(err)
	}

	v := NewVerifier()
	v.RegisterDevice(dev.Identity().ID(), dev.Identity().RootKey())
	v.AllowMeasurement(Measure(app))

	nonce := []byte("server-nonce-123")
	q, err := dev.Attest(app.UUID(), nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(q, nonce); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestAttestationFailures(t *testing.T) {
	dev := NewDevice("pi-client-1")
	app := &echoTA{uuid: NameUUID("gradsec"), version: "2.0"}
	if err := dev.Install(app); err != nil {
		t.Fatal(err)
	}
	v := NewVerifier()
	v.RegisterDevice(dev.Identity().ID(), dev.Identity().RootKey())
	v.AllowMeasurement(Measure(app))
	nonce := []byte("n1")
	q, err := dev.Attest(app.UUID(), nonce)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("unknown device", func(t *testing.T) {
		q2 := q
		q2.DeviceID = "rogue"
		if err := v.Verify(q2, nonce); !errors.Is(err, ErrUnknownDevice) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("stale nonce", func(t *testing.T) {
		if err := v.Verify(q, []byte("other")); !errors.Is(err, ErrNonceMismatch) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("forged mac", func(t *testing.T) {
		q2 := q
		q2.MAC = append([]byte(nil), q.MAC...)
		q2.MAC[0] ^= 1
		if err := v.Verify(q2, nonce); !errors.Is(err, ErrBadQuote) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unexpected measurement", func(t *testing.T) {
		rogue := &echoTA{uuid: NameUUID("malware"), version: "6.6.6"}
		if err := dev.Install(rogue); err != nil {
			t.Fatal(err)
		}
		q2, err := dev.Attest(rogue.UUID(), nonce)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Verify(q2, nonce); !errors.Is(err, ErrUntrustedMeasure) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("version changes measurement", func(t *testing.T) {
		v1 := Measure(&echoTA{uuid: NameUUID("x"), version: "1"})
		v2 := Measure(&echoTA{uuid: NameUUID("x"), version: "2"})
		if v1 == v2 {
			t.Fatal("different versions must measure differently")
		}
	})
	t.Run("attest unknown ta", func(t *testing.T) {
		if _, err := dev.Attest(NameUUID("missing"), nonce); !errors.Is(err, ErrUnknownTA) {
			t.Fatalf("err = %v", err)
		}
	})
}
