package tz

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newStorage(backend StorageBackend) *SecureStorage {
	ssk := [32]byte{1, 2, 3}
	return NewSecureStorage(ssk, NameUUID("ta"), backend)
}

func TestStorageRoundTrip(t *testing.T) {
	s := newStorage(NewREEFSBackend())
	msg := []byte("model weights v1")
	if err := s.Put("model", msg); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("model")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("roundtrip = %q", got)
	}
}

func TestStorageCiphertextHidesPlaintext(t *testing.T) {
	backend := NewREEFSBackend()
	s := newStorage(backend)
	secret := []byte("super-secret-gradients-0123456789")
	if err := s.Put("g", secret); err != nil {
		t.Fatal(err)
	}
	names, _ := backend.List()
	blob, err := backend.Get(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, secret[:16]) {
		t.Fatal("backend blob contains plaintext")
	}
}

func TestStorageTamperDetected(t *testing.T) {
	backend := NewREEFSBackend()
	s := newStorage(backend)
	if err := s.Put("obj", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	names, _ := backend.List()
	for _, offset := range []int{0, 13, 60, 70} { // nonce, wrapped FEK, ct
		if err := backend.Tamper(names[0], offset); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("obj"); !errors.Is(err, ErrStorageTampered) {
			t.Fatalf("offset %d: err = %v, want tampered", offset, err)
		}
		// restore
		if err := backend.Tamper(names[0], offset); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("obj"); err != nil {
		t.Fatalf("restored object must decrypt: %v", err)
	}
}

func TestStorageTruncatedBlob(t *testing.T) {
	backend := NewREEFSBackend()
	s := newStorage(backend)
	if err := backend.Put(s.prefix+"short", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("short"); !errors.Is(err, ErrStorageTampered) {
		t.Fatalf("truncated blob: %v", err)
	}
}

func TestStorageMissingObject(t *testing.T) {
	s := newStorage(NewREEFSBackend())
	if _, err := s.Get("missing"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("missing object: %v", err)
	}
}

func TestStorageDeleteAndList(t *testing.T) {
	s := newStorage(NewREEFSBackend())
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("deleted object: %v", err)
	}
	// Deleting a missing object is not an error.
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
}

func TestStorageTAIsolation(t *testing.T) {
	backend := NewREEFSBackend()
	ssk := [32]byte{9}
	s1 := NewSecureStorage(ssk, NameUUID("ta1"), backend)
	s2 := NewSecureStorage(ssk, NameUUID("ta2"), backend)
	if err := s1.Put("obj", []byte("ta1 data")); err != nil {
		t.Fatal(err)
	}
	// ta2 cannot see ta1's object (different namespace)...
	if _, err := s2.Get("obj"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("cross-TA get: %v", err)
	}
	// ...and even reading the raw blob under ta1's name fails to decrypt
	// with ta2's TSK.
	names, _ := backend.List()
	blob, _ := backend.Get(names[0])
	if err := backend.Put(s2.prefix+"obj", blob); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("obj"); !errors.Is(err, ErrStorageTampered) {
		t.Fatalf("cross-TA decrypt: %v", err)
	}
}

func TestRPMBCapacityAndCounter(t *testing.T) {
	b := NewRPMBBackend(200)
	s := newStorage(b)
	if err := s.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c1 := b.WriteCounter()
	if c1 == 0 {
		t.Fatal("write counter must advance")
	}
	// Overflow the partition.
	big := make([]byte, 400)
	if err := s.Put("big", big); !errors.Is(err, ErrRPMBFull) {
		t.Fatalf("overflow: %v", err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if b.WriteCounter() <= c1 {
		t.Fatal("delete must advance counter")
	}
}

func TestStorageUint64Helpers(t *testing.T) {
	s := newStorage(NewREEFSBackend())
	if err := s.PutUint64("cycle", 42); err != nil {
		t.Fatal(err)
	}
	v, err := s.GetUint64("cycle")
	if err != nil || v != 42 {
		t.Fatalf("GetUint64 = %d, %v", v, err)
	}
	if err := s.Put("notnum", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetUint64("notnum"); !errors.Is(err, ErrStorageTampered) {
		t.Fatalf("non-uint64: %v", err)
	}
}

// Property: every payload round-trips through both backends.
func TestStorageRoundTripProperty(t *testing.T) {
	f := func(payload []byte, name string) bool {
		if name == "" {
			name = "n"
		}
		for _, backend := range []StorageBackend{NewREEFSBackend(), NewRPMBBackend(1 << 20)} {
			s := newStorage(backend)
			if err := s.Put(name, payload); err != nil {
				return false
			}
			got, err := s.Get(name)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
