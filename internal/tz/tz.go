// Package tz is a software simulator of ARM TrustZone as exposed by the
// OP-TEE trusted OS — the substrate the paper's GradSec prototype runs
// on. It models:
//
//   - the two execution worlds and the secure-monitor call (SMC) that
//     switches between them, with per-switch cost charged to a virtual
//     clock;
//   - a capacity-limited secure-memory allocator (TrustZone secure RAM is
//     typically 3–5 MB);
//   - a GlobalPlatform-style trusted-application (TA) framework with
//     install / open-session / invoke-command / close-session lifecycle;
//   - secure storage with the OP-TEE key hierarchy (per-device SSK → per-TA
//     TSK → per-object FEK) over REE-FS and RPMB backends;
//   - a trusted I/O path (authenticated encrypted channel between the FL
//     server and a TA); and
//   - HMAC-based remote attestation.
//
// The security property everything else relies on is the information-flow
// boundary: normal-world code must never observe secure-world data. The
// simulator enforces it at the API boundary — TA invocation responses are
// screened against the secure-memory registry, and violations panic.
package tz

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
)

// UUID identifies a trusted application, GlobalPlatform style.
type UUID [16]byte

// NameUUID derives a deterministic UUID from a human-readable name.
func NameUUID(name string) UUID {
	var u UUID
	sum := sha256.Sum256([]byte("gradsec-ta:" + name))
	copy(u[:], sum[:16])
	return u
}

func (u UUID) String() string { return hex.EncodeToString(u[:]) }

// TrustedApp is the interface trusted applications implement. All methods
// execute logically in the secure world; the device charges world-switch
// and secure-compute costs around them.
type TrustedApp interface {
	// UUID returns the application identity.
	UUID() UUID
	// Version participates in the attestation measurement.
	Version() string
	// OpenSession creates per-session state.
	OpenSession(env *TAEnv) (state any, err error)
	// Invoke executes a command against session state. The returned value
	// must not reference secure memory; the device enforces this.
	Invoke(env *TAEnv, state any, cmd uint32, req any) (resp any, err error)
	// CloseSession releases per-session state.
	CloseSession(env *TAEnv, state any)
}

// TAEnv is the secure-world environment handed to TA callbacks, the
// equivalent of the GP TEE Internal API.
type TAEnv struct {
	// Mem is the secure-memory allocator.
	Mem *SecureAllocator
	// Storage is the TA's secure storage instance.
	Storage *SecureStorage
	// Clock is the device's virtual clock; TAs charge their own compute.
	Clock *simclock.Clock
	// Cost is the device cost model.
	Cost simclock.CostModel
}

// Errors returned by the device and its subsystems.
var (
	ErrUnknownTA        = errors.New("tz: no such trusted application")
	ErrSessionClosed    = errors.New("tz: session closed")
	ErrAlreadyInstalled = errors.New("tz: trusted application already installed")
)

// DeviceOption configures NewDevice.
type DeviceOption func(*Device)

// WithSecureMemory overrides the secure memory capacity in bytes.
func WithSecureMemory(capBytes int) DeviceOption {
	return func(d *Device) { d.mem = NewSecureAllocator(capBytes) }
}

// WithCostModel overrides the device cost model.
func WithCostModel(m simclock.CostModel) DeviceOption {
	return func(d *Device) { d.cost = m }
}

// WithStorageBackend overrides the secure-storage backend.
func WithStorageBackend(b StorageBackend) DeviceOption {
	return func(d *Device) { d.backend = b }
}

// DefaultSecureMemory is the default enclave capacity: the paper cites
// 3–5 MB of TrustZone secure memory; we default to 4 MiB.
const DefaultSecureMemory = 4 << 20

// Device models one TrustZone-capable client device: both worlds, the
// secure monitor, the trusted OS with its installed TAs, secure memory
// and storage, and a per-device identity for attestation.
type Device struct {
	mu sync.Mutex

	clock   *simclock.Clock
	cost    simclock.CostModel
	mem     *SecureAllocator
	backend StorageBackend
	ssk     [32]byte // per-device Secure Storage Key
	ident   *Identity

	apps     map[UUID]TrustedApp
	smcCount int64
	nextSess int
	openSess map[int]*Session
}

// NewDevice creates a device with the Pi-3B+ cost model, 4 MiB of secure
// memory and an in-memory REE-FS storage backend, unless overridden.
func NewDevice(name string, opts ...DeviceOption) *Device {
	d := &Device{
		clock:    &simclock.Clock{},
		cost:     simclock.Pi3B(),
		mem:      NewSecureAllocator(DefaultSecureMemory),
		backend:  NewREEFSBackend(),
		apps:     make(map[UUID]TrustedApp),
		openSess: make(map[int]*Session),
	}
	d.ssk = sha256.Sum256([]byte("device-ssk:" + name))
	d.ident = NewIdentity(name)
	for _, o := range opts {
		o(d)
	}
	return d
}

// Clock returns the device's virtual clock.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// Cost returns the device's cost model.
func (d *Device) Cost() simclock.CostModel { return d.cost }

// SecureMemory returns the secure allocator (for accounting/tests; normal
// world cannot read region contents through it).
func (d *Device) SecureMemory() *SecureAllocator { return d.mem }

// Identity returns the device's attestation identity.
func (d *Device) Identity() *Identity { return d.ident }

// SMCCount reports how many world switches have occurred.
func (d *Device) SMCCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.smcCount
}

// Install registers a trusted application with the trusted OS.
func (d *Device) Install(app TrustedApp) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.apps[app.UUID()]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyInstalled, app.UUID())
	}
	d.apps[app.UUID()] = app
	return nil
}

// Measurement returns the attestation measurement of an installed TA, or
// an error if it is not installed.
func (d *Device) Measurement(uuid UUID) ([32]byte, error) {
	d.mu.Lock()
	app, ok := d.apps[uuid]
	d.mu.Unlock()
	if !ok {
		return [32]byte{}, fmt.Errorf("%w: %s", ErrUnknownTA, uuid)
	}
	return Measure(app), nil
}

// Attest produces an attestation quote over the given TA for a
// verifier-chosen nonce.
func (d *Device) Attest(uuid UUID, nonce []byte) (Quote, error) {
	m, err := d.Measurement(uuid)
	if err != nil {
		return Quote{}, err
	}
	return d.ident.Attest(m, nonce), nil
}

// smc models one secure-monitor world transition.
func (d *Device) smc() {
	d.mu.Lock()
	d.smcCount++
	d.mu.Unlock()
	d.clock.ChargeKernel(d.cost.WorldSwitch)
}

// env builds the secure-world environment for a TA.
func (d *Device) env(uuid UUID) *TAEnv {
	return &TAEnv{
		Mem:     d.mem,
		Storage: NewSecureStorage(d.ssk, uuid, d.backend),
		Clock:   d.clock,
		Cost:    d.cost,
	}
}

// Session is an open client session with a TA, the normal-world handle of
// the GP TEE Client API.
type Session struct {
	dev    *Device
	app    TrustedApp
	env    *TAEnv
	state  any
	id     int
	closed bool
}

// OpenSession opens a session with the TA identified by uuid, crossing
// into the secure world.
func (d *Device) OpenSession(uuid UUID) (*Session, error) {
	d.mu.Lock()
	app, ok := d.apps[uuid]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTA, uuid)
	}
	d.smc() // enter secure world
	env := d.env(uuid)
	state, err := app.OpenSession(env)
	d.smc() // return to normal world
	if err != nil {
		return nil, fmt.Errorf("tz: open session with %s: %w", uuid, err)
	}
	d.mu.Lock()
	d.nextSess++
	s := &Session{dev: d, app: app, env: env, state: state, id: d.nextSess}
	d.openSess[s.id] = s
	d.mu.Unlock()
	return s, nil
}

// Invoke executes one TA command. The request crosses into the secure
// world and the response crosses back; the response is screened against
// the secure-memory registry to enforce the isolation boundary.
func (s *Session) Invoke(cmd uint32, req any) (any, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.dev.smc()
	resp, err := s.app.Invoke(s.env, s.state, cmd, req)
	s.dev.smc()
	if err != nil {
		return nil, err
	}
	if leaked := s.dev.mem.scanForSecureRefs(resp); leaked != "" {
		panic(fmt.Sprintf("tz: TA %s leaked secure region %q across the world boundary", s.app.UUID(), leaked))
	}
	return resp, nil
}

// Close terminates the session.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.dev.smc()
	s.app.CloseSession(s.env, s.state)
	s.dev.smc()
	s.dev.mu.Lock()
	delete(s.dev.openSess, s.id)
	s.dev.mu.Unlock()
}

// scanForSecureRefs walks common response container shapes looking for
// registered secure tensors. It intentionally covers the shapes used at
// the GradSec TA boundary (tensors, slices and maps of tensors).
func (a *SecureAllocator) scanForSecureRefs(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case *tensor.Tensor:
		return a.secureTensorName(t)
	case []*tensor.Tensor:
		for _, x := range t {
			if n := a.secureTensorName(x); n != "" {
				return n
			}
		}
	case [][]*tensor.Tensor:
		for _, xs := range t {
			for _, x := range xs {
				if n := a.secureTensorName(x); n != "" {
					return n
				}
			}
		}
	case map[string]*tensor.Tensor:
		for _, x := range t {
			if n := a.secureTensorName(x); n != "" {
				return n
			}
		}
	}
	return ""
}
