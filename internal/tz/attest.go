package tz

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Remote attestation (§7.3): TrustZone lacks native attestation, so the
// paper points to TPM-backed or WaTZ-style schemes. We model the common
// core — a per-device root key measuring TA identity, producing a quote a
// verifier with the registered device key can check. The FL server uses
// this during client selection (Fig. 2 step 1) to reject clients whose
// TEE or TA is not genuine.

// Attestation errors.
var (
	ErrUnknownDevice    = errors.New("tz: attestation from unknown device")
	ErrBadQuote         = errors.New("tz: attestation quote failed verification")
	ErrUntrustedMeasure = errors.New("tz: TA measurement not in verifier policy")
	ErrNonceMismatch    = errors.New("tz: attestation nonce mismatch")
)

// Identity is a device's attestation root: an ID and a symmetric root key
// (standing in for a fused endorsement key).
type Identity struct {
	id  string
	key [32]byte
}

// NewIdentity derives a deterministic identity for the named device.
func NewIdentity(name string) *Identity {
	return &Identity{id: name, key: sha256.Sum256([]byte("device-root-key:" + name))}
}

// ID returns the device identifier.
func (i *Identity) ID() string { return i.id }

// RootKey returns the device root key for verifier registration
// (provisioning step — in real deployments this happens at manufacture).
func (i *Identity) RootKey() [32]byte { return i.key }

// Measure computes the TA measurement: a hash over its code identity
// (UUID and version stand in for the binary hash).
func Measure(app TrustedApp) [32]byte {
	h := sha256.New()
	u := app.UUID()
	h.Write(u[:])
	h.Write([]byte{0})
	h.Write([]byte(app.Version()))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Quote is a signed attestation statement.
type Quote struct {
	DeviceID    string
	Measurement [32]byte
	Nonce       []byte
	MAC         []byte
}

// Attest produces a quote binding the measurement to the verifier nonce.
func (i *Identity) Attest(measurement [32]byte, nonce []byte) Quote {
	return Quote{
		DeviceID:    i.id,
		Measurement: measurement,
		Nonce:       append([]byte(nil), nonce...),
		MAC:         quoteMAC(i.key, measurement, nonce),
	}
}

func quoteMAC(key [32]byte, measurement [32]byte, nonce []byte) []byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(measurement[:])
	mac.Write([]byte{0})
	mac.Write(nonce)
	return mac.Sum(nil)
}

// Verifier checks quotes against registered device keys and a policy of
// acceptable TA measurements.
type Verifier struct {
	devices  map[string][32]byte
	measures map[[32]byte]bool
}

// NewVerifier returns an empty verifier.
func NewVerifier() *Verifier {
	return &Verifier{devices: make(map[string][32]byte), measures: make(map[[32]byte]bool)}
}

// RegisterDevice provisions a device root key.
func (v *Verifier) RegisterDevice(id string, key [32]byte) { v.devices[id] = key }

// AllowMeasurement whitelists a TA measurement.
func (v *Verifier) AllowMeasurement(m [32]byte) { v.measures[m] = true }

// Verify checks the quote's MAC, nonce freshness and measurement policy.
func (v *Verifier) Verify(q Quote, nonce []byte) error {
	key, ok := v.devices[q.DeviceID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, q.DeviceID)
	}
	if !bytes.Equal(q.Nonce, nonce) {
		return ErrNonceMismatch
	}
	if !hmac.Equal(q.MAC, quoteMAC(key, q.Measurement, nonce)) {
		return ErrBadQuote
	}
	if !v.measures[q.Measurement] {
		return fmt.Errorf("%w: %x", ErrUntrustedMeasure, q.Measurement[:8])
	}
	return nil
}
