package tz

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/gradsec/gradsec/internal/tensor"
)

// ErrOutOfSecureMemory is returned when an allocation would exceed the
// enclave capacity — the central constraint the paper designs around
// (TrustZone secure RAM is on the order of 3–5 MB).
var ErrOutOfSecureMemory = errors.New("tz: out of secure memory")

// ErrDoubleFree is returned when a region is freed twice.
var ErrDoubleFree = errors.New("tz: secure region already freed")

// Region is one named secure-memory allocation.
type Region struct {
	name  string
	size  int
	freed bool
}

// Name returns the region's label.
func (r *Region) Name() string { return r.name }

// Size returns the region's size in bytes.
func (r *Region) Size() int { return r.size }

// SecureAllocator models the enclave's secure RAM: a fixed capacity,
// named allocations, and high-water-mark accounting (the paper's "TEE
// memory usage" metric is the peak over a training cycle).
type SecureAllocator struct {
	mu sync.Mutex

	capBytes int
	inUse    int
	peak     int
	regions  map[*Region]struct{}
	// tensors registered as secure, for boundary screening.
	tensors map[*tensor.Tensor]string
}

// NewSecureAllocator creates an allocator with the given capacity.
func NewSecureAllocator(capBytes int) *SecureAllocator {
	return &SecureAllocator{
		capBytes: capBytes,
		regions:  make(map[*Region]struct{}),
		tensors:  make(map[*tensor.Tensor]string),
	}
}

// Cap returns the capacity in bytes.
func (a *SecureAllocator) Cap() int { return a.capBytes }

// InUse returns the currently allocated bytes.
func (a *SecureAllocator) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// Peak returns the high-water mark since the last ResetPeak.
func (a *SecureAllocator) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// ResetPeak sets the high-water mark to the current usage.
func (a *SecureAllocator) ResetPeak() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.peak = a.inUse
}

// Alloc reserves size bytes under the given name.
func (a *SecureAllocator) Alloc(name string, size int) (*Region, error) {
	if size < 0 {
		return nil, fmt.Errorf("tz: negative allocation %d for %q", size, name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inUse+size > a.capBytes {
		return nil, fmt.Errorf("%w: %q needs %d B, %d of %d B in use",
			ErrOutOfSecureMemory, name, size, a.inUse, a.capBytes)
	}
	r := &Region{name: name, size: size}
	a.regions[r] = struct{}{}
	a.inUse += size
	if a.inUse > a.peak {
		a.peak = a.inUse
	}
	return r, nil
}

// Free releases a region.
func (a *SecureAllocator) Free(r *Region) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r.freed {
		return fmt.Errorf("%w: %q", ErrDoubleFree, r.name)
	}
	if _, ok := a.regions[r]; !ok {
		return fmt.Errorf("tz: region %q does not belong to this allocator", r.name)
	}
	r.freed = true
	delete(a.regions, r)
	a.inUse -= r.size
	return nil
}

// Regions returns the names and sizes of live regions, sorted by name
// (diagnostics / TCB reports).
func (a *SecureAllocator) Regions() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.regions))
	for r := range a.regions {
		out[r.name] += r.size
	}
	return out
}

// RegionNames returns live region names sorted alphabetically.
func (a *SecureAllocator) RegionNames() []string {
	m := a.Regions()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterTensor marks a tensor as residing in secure memory; the device
// uses the registry to screen TA responses for leaks. The tensor's cell
// count is already covered by an Alloc'd region; registration itself does
// not charge capacity.
func (a *SecureAllocator) RegisterTensor(t *tensor.Tensor, name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tensors[t] = name
}

// UnregisterTensor removes a tensor from the secure registry (e.g. after
// its values have been intentionally declassified through the trusted
// I/O path).
func (a *SecureAllocator) UnregisterTensor(t *tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.tensors, t)
}

// secureTensorName reports the registered name of t, or "" if t is not
// secure.
func (a *SecureAllocator) secureTensorName(t *tensor.Tensor) string {
	if t == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tensors[t]
}

// IsSecure reports whether t is registered as secure memory.
func (a *SecureAllocator) IsSecure(t *tensor.Tensor) bool { return a.secureTensorName(t) != "" }
