package tz

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Secure storage implements the OP-TEE trusted-storage design the paper
// relies on for keeping the FL model and client data confidential between
// cycles (§7.3): every object is encrypted with a random File Encryption
// Key (FEK); the FEK is wrapped by the TA Storage Key (TSK), which is
// derived from the per-device Secure Storage Key (SSK) and the TA's UUID.

// Storage errors.
var (
	ErrObjectNotFound  = errors.New("tz: storage object not found")
	ErrStorageTampered = errors.New("tz: storage object failed authentication (tampered?)")
	ErrRPMBFull        = errors.New("tz: RPMB partition full")
)

// StorageBackend is where encrypted blobs physically live. Backends see
// only ciphertext: REE-FS lives in the (untrusted) normal world, RPMB in
// a replay-protected eMMC partition.
type StorageBackend interface {
	// Put stores blob under name, replacing any previous value.
	Put(name string, blob []byte) error
	// Get retrieves the blob stored under name.
	Get(name string) ([]byte, error)
	// Delete removes name. Deleting a missing object is not an error.
	Delete(name string) error
	// List returns stored names in sorted order.
	List() ([]string, error)
}

// REEFSBackend simulates the REE-FS secure-storage backend: blobs live in
// normal-world storage (here an in-memory map) and are therefore fully
// exposed to tampering — which the encryption layer must detect.
type REEFSBackend struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewREEFSBackend returns an empty REE-FS backend.
func NewREEFSBackend() *REEFSBackend {
	return &REEFSBackend{blobs: make(map[string][]byte)}
}

// Put implements StorageBackend.
func (b *REEFSBackend) Put(name string, blob []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blobs[name] = append([]byte(nil), blob...)
	return nil
}

// Get implements StorageBackend.
func (b *REEFSBackend) Get(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	blob, ok := b.blobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	return append([]byte(nil), blob...), nil
}

// Delete implements StorageBackend.
func (b *REEFSBackend) Delete(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.blobs, name)
	return nil
}

// List implements StorageBackend.
func (b *REEFSBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.blobs))
	for n := range b.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Tamper flips a byte of the stored blob — test hook simulating a
// normal-world attacker modifying REE-FS files.
func (b *REEFSBackend) Tamper(name string, offset int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	blob, ok := b.blobs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	blob[offset%len(blob)] ^= 0xFF
	return nil
}

// RPMBBackend simulates the replay-protected memory block backend: a
// small partition with a monotonic write counter.
type RPMBBackend struct {
	mu       sync.Mutex
	capBytes int
	used     int
	counter  uint64
	blobs    map[string][]byte
}

// NewRPMBBackend returns an RPMB backend with the given capacity
// (hardware RPMB partitions are typically ≤16 MB; tests use small caps).
func NewRPMBBackend(capBytes int) *RPMBBackend {
	return &RPMBBackend{capBytes: capBytes, blobs: make(map[string][]byte)}
}

// Put implements StorageBackend, enforcing the partition capacity and
// bumping the monotonic counter.
func (b *RPMBBackend) Put(name string, blob []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delta := len(blob) - len(b.blobs[name])
	if b.used+delta > b.capBytes {
		return fmt.Errorf("%w: need %d more bytes of %d", ErrRPMBFull, delta, b.capBytes)
	}
	b.used += delta
	b.counter++
	b.blobs[name] = append([]byte(nil), blob...)
	return nil
}

// Get implements StorageBackend.
func (b *RPMBBackend) Get(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	blob, ok := b.blobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrObjectNotFound, name)
	}
	return append([]byte(nil), blob...), nil
}

// Delete implements StorageBackend.
func (b *RPMBBackend) Delete(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if blob, ok := b.blobs[name]; ok {
		b.used -= len(blob)
		b.counter++
		delete(b.blobs, name)
	}
	return nil
}

// List implements StorageBackend.
func (b *RPMBBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.blobs))
	for n := range b.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// WriteCounter returns the monotonic write counter.
func (b *RPMBBackend) WriteCounter() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counter
}

// SecureStorage is a TA-scoped encrypted object store.
type SecureStorage struct {
	tsk     [32]byte
	backend StorageBackend
	prefix  string
}

// NewSecureStorage derives the TA Storage Key from the device SSK and the
// TA UUID and returns a store bound to backend. Objects of different TAs
// are namespaced and keyed apart.
func NewSecureStorage(ssk [32]byte, uuid UUID, backend StorageBackend) *SecureStorage {
	return &SecureStorage{
		tsk:     deriveKey(ssk[:], "tsk", uuid[:]),
		backend: backend,
		prefix:  uuid.String() + "/",
	}
}

// deriveKey is an HKDF-style expand: HMAC-SHA256(parent, label || ctx).
func deriveKey(parent []byte, label string, ctx []byte) [32]byte {
	mac := hmac.New(sha256.New, parent)
	mac.Write([]byte(label))
	mac.Write([]byte{0})
	mac.Write(ctx)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// blob layout: nonceFEK(12) | wrappedFEK(32+16) | nonceData(12) | ct.
const (
	nonceSize   = 12
	wrappedSize = 32 + 16
)

// Put encrypts plaintext under a fresh FEK and stores it.
func (s *SecureStorage) Put(name string, plaintext []byte) error {
	var fek [32]byte
	if _, err := rand.Read(fek[:]); err != nil {
		return fmt.Errorf("tz: generating FEK: %w", err)
	}
	wrapNonce := make([]byte, nonceSize)
	dataNonce := make([]byte, nonceSize)
	if _, err := rand.Read(wrapNonce); err != nil {
		return err
	}
	if _, err := rand.Read(dataNonce); err != nil {
		return err
	}
	wrapped := gcmSeal(s.tsk, wrapNonce, fek[:], []byte(name))
	ct := gcmSeal(fek, dataNonce, plaintext, []byte(name))
	blob := make([]byte, 0, nonceSize+len(wrapped)+nonceSize+len(ct))
	blob = append(blob, wrapNonce...)
	blob = append(blob, wrapped...)
	blob = append(blob, dataNonce...)
	blob = append(blob, ct...)
	return s.backend.Put(s.prefix+name, blob)
}

// Get retrieves and decrypts an object, failing with ErrStorageTampered
// if authentication fails anywhere in the chain.
func (s *SecureStorage) Get(name string) ([]byte, error) {
	blob, err := s.backend.Get(s.prefix + name)
	if err != nil {
		return nil, err
	}
	if len(blob) < nonceSize+wrappedSize+nonceSize {
		return nil, fmt.Errorf("%w: truncated blob %q", ErrStorageTampered, name)
	}
	wrapNonce := blob[:nonceSize]
	wrapped := blob[nonceSize : nonceSize+wrappedSize]
	dataNonce := blob[nonceSize+wrappedSize : nonceSize+wrappedSize+nonceSize]
	ct := blob[nonceSize+wrappedSize+nonceSize:]

	fekBytes, err := gcmOpen(s.tsk, wrapNonce, wrapped, []byte(name))
	if err != nil {
		return nil, fmt.Errorf("%w: %q FEK unwrap: %v", ErrStorageTampered, name, err)
	}
	var fek [32]byte
	copy(fek[:], fekBytes)
	pt, err := gcmOpen(fek, dataNonce, ct, []byte(name))
	if err != nil {
		return nil, fmt.Errorf("%w: %q payload: %v", ErrStorageTampered, name, err)
	}
	return pt, nil
}

// Delete removes an object.
func (s *SecureStorage) Delete(name string) error { return s.backend.Delete(s.prefix + name) }

// List returns this TA's object names (without the namespace prefix).
func (s *SecureStorage) List() ([]string, error) {
	all, err := s.backend.List()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range all {
		if len(n) > len(s.prefix) && n[:len(s.prefix)] == s.prefix {
			out = append(out, n[len(s.prefix):])
		}
	}
	return out, nil
}

func gcmSeal(key [32]byte, nonce, plaintext, aad []byte) []byte {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // 32-byte key cannot fail
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	return aead.Seal(nil, nonce, plaintext, aad)
}

func gcmOpen(key [32]byte, nonce, ct, aad []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	return aead.Open(nil, nonce, ct, aad)
}

// PutUint64 stores a little-endian uint64 (convenience for counters).
func (s *SecureStorage) PutUint64(name string, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return s.Put(name, buf[:])
}

// GetUint64 retrieves a value stored with PutUint64.
func (s *SecureStorage) GetUint64(name string) (uint64, error) {
	b, err := s.Get(name)
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: %q is not a uint64", ErrStorageTampered, name)
	}
	return binary.LittleEndian.Uint64(b), nil
}
