package tz

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gradsec/gradsec/internal/tensor"
)

func TestAllocatorBasics(t *testing.T) {
	a := NewSecureAllocator(1000)
	r1, err := a.Alloc("w1", 400)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Alloc("w2", 500)
	if err != nil {
		t.Fatal(err)
	}
	if a.InUse() != 900 || a.Peak() != 900 {
		t.Fatalf("inUse=%d peak=%d", a.InUse(), a.Peak())
	}
	if _, err := a.Alloc("w3", 200); !errors.Is(err, ErrOutOfSecureMemory) {
		t.Fatalf("overcommit: %v", err)
	}
	if err := a.Free(r1); err != nil {
		t.Fatal(err)
	}
	if a.InUse() != 500 {
		t.Fatalf("inUse after free = %d", a.InUse())
	}
	// Peak survives frees.
	if a.Peak() != 900 {
		t.Fatalf("peak = %d, want 900", a.Peak())
	}
	if _, err := a.Alloc("w3", 500); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	_ = r2
}

func TestAllocatorDoubleFree(t *testing.T) {
	a := NewSecureAllocator(100)
	r, err := a.Alloc("x", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(r); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(r); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestAllocatorForeignRegion(t *testing.T) {
	a := NewSecureAllocator(100)
	b := NewSecureAllocator(100)
	r, err := a.Alloc("x", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(r); err == nil {
		t.Fatal("freeing foreign region must fail")
	}
}

func TestAllocatorNegativeSize(t *testing.T) {
	a := NewSecureAllocator(100)
	if _, err := a.Alloc("x", -1); err == nil {
		t.Fatal("negative allocation must fail")
	}
}

func TestResetPeak(t *testing.T) {
	a := NewSecureAllocator(100)
	r, _ := a.Alloc("x", 80)
	if err := a.Free(r); err != nil {
		t.Fatal(err)
	}
	a.ResetPeak()
	if a.Peak() != 0 {
		t.Fatalf("peak after reset = %d", a.Peak())
	}
}

func TestRegionsAccounting(t *testing.T) {
	a := NewSecureAllocator(1000)
	if _, err := a.Alloc("layer2/weights", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc("layer2/acts", 200); err != nil {
		t.Fatal(err)
	}
	m := a.Regions()
	if m["layer2/weights"] != 100 || m["layer2/acts"] != 200 {
		t.Fatalf("regions = %v", m)
	}
	names := a.RegionNames()
	if len(names) != 2 || names[0] != "layer2/acts" {
		t.Fatalf("names = %v", names)
	}
}

func TestTensorRegistry(t *testing.T) {
	a := NewSecureAllocator(100)
	tt := tensor.New(2)
	if a.IsSecure(tt) {
		t.Fatal("unregistered tensor must not be secure")
	}
	a.RegisterTensor(tt, "w")
	if !a.IsSecure(tt) {
		t.Fatal("registered tensor must be secure")
	}
	a.UnregisterTensor(tt)
	if a.IsSecure(tt) {
		t.Fatal("unregistered tensor must lose secure status")
	}
	if a.IsSecure(nil) {
		t.Fatal("nil tensor is never secure")
	}
}

// Property: for any sequence of alloc/free operations, inUse equals the
// sum of live region sizes, never exceeds capacity, and peak ≥ inUse.
func TestAllocatorConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewSecureAllocator(1 << 16)
		var live []*Region
		liveSum := 0
		for op := 0; op < 200; op++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				size := r.Intn(5000)
				reg, err := a.Alloc("r", size)
				if err == nil {
					live = append(live, reg)
					liveSum += size
				} else if !errors.Is(err, ErrOutOfSecureMemory) {
					return false
				}
			} else {
				i := r.Intn(len(live))
				reg := live[i]
				live = append(live[:i], live[i+1:]...)
				liveSum -= reg.Size()
				if err := a.Free(reg); err != nil {
					return false
				}
			}
			if a.InUse() != liveSum || a.InUse() > a.Cap() || a.Peak() < a.InUse() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
