package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gradsec/gradsec/internal/tensor"
)

// numGrad computes the central finite-difference gradient of f at x.
func numGrad(f func(x *tensor.Tensor) float64, x *tensor.Tensor) *tensor.Tensor {
	const h = 1e-6
	g := tensor.New(x.Shape...)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := f(x)
		x.Data[i] = orig - h
		fm := f(x)
		x.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * h)
	}
	return g
}

// gradCheck compares the autodiff gradient of build(x) against finite
// differences. build must construct a fresh graph from the given tensor.
func gradCheck(t *testing.T, name string, x *tensor.Tensor, build func(x *Node) *Node) {
	t.Helper()
	xv := Var(x)
	y := build(xv)
	got := GradValues(y, []*Node{xv})[0]
	want := numGrad(func(xt *tensor.Tensor) float64 {
		return Scalar(build(Var(xt)))
	}, x)
	if !got.EqualApprox(want, 1e-4) {
		t.Fatalf("%s: gradcheck failed\n got %v\nwant %v", name, got, want)
	}
}

func TestGradCheckPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.Randn(rng, 1, 3, 4)
	w := tensor.Randn(rng, 1, 4, 2)
	b := tensor.Randn(rng, 1, 1, 4)

	tests := []struct {
		name  string
		in    *tensor.Tensor
		build func(x *Node) *Node
	}{
		{"sumall", x.Clone(), func(n *Node) *Node { return SumAll(n) }},
		{"scale", x.Clone(), func(n *Node) *Node { return SumAll(Scale(n, 2.5)) }},
		{"add-self", x.Clone(), func(n *Node) *Node { return SumAll(Add(n, n)) }},
		{"sub", x.Clone(), func(n *Node) *Node { return SumAll(Sub(Scale(n, 3), n)) }},
		{"mul-square", x.Clone(), func(n *Node) *Node { return SumAll(Square(n)) }},
		{"matmul", x.Clone(), func(n *Node) *Node { return SumAll(MatMul(n, Const(w))) }},
		{"transpose", x.Clone(), func(n *Node) *Node { return SumAll(Square(Transpose(n))) }},
		{"reshape", x.Clone(), func(n *Node) *Node { return SumAll(Square(Reshape(n, 4, 3))) }},
		{"exp", tensor.Scale(x.Clone(), 0.3), func(n *Node) *Node { return SumAll(Exp(n)) }},
		{"log", tensor.Apply(x, func(v float64) float64 { return math.Abs(v) + 1 }), func(n *Node) *Node { return SumAll(Log(n)) }},
		{"recip", tensor.Apply(x, func(v float64) float64 { return math.Abs(v) + 1 }), func(n *Node) *Node { return SumAll(Reciprocal(n)) }},
		{"sigmoid", x.Clone(), func(n *Node) *Node { return SumAll(Sigmoid(n)) }},
		{"tanh", x.Clone(), func(n *Node) *Node { return SumAll(Tanh(n)) }},
		{"rowsum", x.Clone(), func(n *Node) *Node { return SumAll(Square(RowSum(n))) }},
		{"colsum", x.Clone(), func(n *Node) *Node { return SumAll(Square(ColSum(n))) }},
		{"bias", b.Clone(), func(n *Node) *Node { return SumAll(Square(AddRowBias(Const(x), n))) }},
		{"broadcastcol", tensor.Randn(rng, 1, 3, 1), func(n *Node) *Node { return SumAll(Square(BroadcastCol(n, 5))) }},
		{"broadcastrow", b.Clone(), func(n *Node) *Node { return SumAll(Square(BroadcastRow(n, 5))) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { gradCheck(t, tc.name, tc.in, tc.build) })
	}
}

func TestGradCheckReLUAwayFromKink(t *testing.T) {
	// Keep inputs away from 0 so the subgradient convention is exact.
	x := tensor.FromSlice([]float64{-2, -1, 1, 2, 3, -3}, 2, 3)
	gradCheck(t, "relu", x, func(n *Node) *Node { return SumAll(Square(ReLU(n))) })
}

func TestGradCheckConvPath(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := tensor.NewConvGeom(2, 2, 5, 5, 3, 3, 2, 1)
	x := tensor.Randn(rng, 1, 2, 2, 5, 5)
	w := tensor.Randn(rng, 0.5, 2*3*3, 3)
	gradCheck(t, "im2col-conv", x, func(n *Node) *Node {
		cols := Im2Col(n, g)
		return SumAll(Square(MatMul(cols, Const(w))))
	})
}

func TestGradCheckConvWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := tensor.NewConvGeom(1, 2, 4, 4, 3, 3, 1, 1)
	x := tensor.Randn(rng, 1, 1, 2, 4, 4)
	w := tensor.Randn(rng, 0.5, 2*3*3, 2)
	gradCheck(t, "conv-weights", w, func(n *Node) *Node {
		cols := Im2Col(Const(x), g)
		return SumAll(Square(MatMul(cols, n)))
	})
}

func TestGradCheckMaxPool(t *testing.T) {
	// Use distinct values so the argmax is stable under perturbation.
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		8, 7, 6, 5,
		9, 11, 10, 12,
		16, 14, 15, 13,
	}, 1, 1, 4, 4)
	gradCheck(t, "maxpool", x, func(n *Node) *Node {
		return SumAll(Square(MaxPool(n, 2, 2)))
	})
}

func TestGradCheckSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	logits := tensor.Randn(rng, 1, 4, 5)
	y := tensor.New(4, 5)
	for i := 0; i < 4; i++ {
		y.Set(1, i, rng.Intn(5))
	}
	gradCheck(t, "softmax-ce", logits, func(n *Node) *Node {
		return SoftmaxCrossEntropy(n, y)
	})
}

// The analytic softmax-CE gradient is (softmax(z) − y)/m; verify directly.
func TestSoftmaxCrossEntropyClosedForm(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 2, 3, 0.5, -1, 0}, 2, 3)
	y := tensor.FromSlice([]float64{0, 0, 1, 1, 0, 0}, 2, 3)
	lv := Var(logits)
	loss := SoftmaxCrossEntropy(lv, y)
	g := GradValues(loss, []*Node{lv})[0]

	want := tensor.New(2, 3)
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += math.Exp(logits.At(i, j))
		}
		for j := 0; j < 3; j++ {
			p := math.Exp(logits.At(i, j)) / sum
			want.Set((p-y.At(i, j))/2, i, j)
		}
	}
	if !g.EqualApprox(want, 1e-10) {
		t.Fatalf("softmax grad = %v, want %v", g, want)
	}
}

// Double backprop: f(x) = Σ (∂/∂w Σ (x·w)²)² must differentiate wrt x.
// With s = Σ x_i w_i (scalar path), ∂/∂w (s²) = 2s·x, so
// f = Σ_j (2s·x_j)² = 4s² ‖x‖², and ∂f/∂x is analytic.
func TestDoubleBackprop(t *testing.T) {
	x := tensor.FromSlice([]float64{1.5, -2, 0.5}, 1, 3)
	w := tensor.FromSlice([]float64{0.3, 0.7, -0.2}, 3, 1)

	build := func(xt *tensor.Tensor) float64 {
		xv, wv := Var(xt), Var(w)
		s := MatMul(xv, wv) // [1,1]
		inner := SumAll(Square(s))
		gw := Grad(inner, []*Node{wv})[0]
		outer := SumAll(Square(gw))
		return Scalar(outer)
	}

	xv, wv := Var(x), Var(w)
	s := MatMul(xv, wv)
	inner := SumAll(Square(s))
	gw := Grad(inner, []*Node{wv})[0]
	outer := SumAll(Square(gw))
	got := GradValues(outer, []*Node{xv})[0]

	want := numGrad(build, x)
	if !got.EqualApprox(want, 1e-4) {
		t.Fatalf("double backprop grad = %v, want %v", got, want)
	}

	// Cross-check against the closed form: f = 4s²‖x‖²,
	// ∂f/∂x_j = 8s·w_j·‖x‖² + 8s²·x_j.
	sv := tensor.Dot(x, w.Reshape(1, 3))
	norm2 := tensor.Dot(x, x)
	closed := tensor.New(1, 3)
	for j := 0; j < 3; j++ {
		closed.Data[j] = 8*sv*w.Data[j]*norm2 + 8*sv*sv*x.Data[j]
	}
	if !got.EqualApprox(closed, 1e-8) {
		t.Fatalf("double backprop vs closed form: got %v, want %v", got, closed)
	}
}

// Double backprop through a sigmoid network layer (the DRIA code path).
func TestDoubleBackpropThroughSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := tensor.Randn(rng, 1, 1, 4)
	w := tensor.Randn(rng, 1, 4, 3)
	target := tensor.Randn(rng, 0.1, 4, 3)

	f := func(xt *tensor.Tensor) float64 {
		xv, wv := Var(xt), Var(w)
		out := Sigmoid(MatMul(xv, wv))
		loss := SumAll(Square(out))
		gw := Grad(loss, []*Node{wv})[0]
		match := SqNormDiff(gw, Const(target))
		return Scalar(match)
	}

	xv, wv := Var(x), Var(w)
	out := Sigmoid(MatMul(xv, wv))
	loss := SumAll(Square(out))
	gw := Grad(loss, []*Node{wv})[0]
	match := SqNormDiff(gw, Const(target))
	got := GradValues(match, []*Node{xv})[0]

	want := numGrad(f, x)
	if !got.EqualApprox(want, 1e-3) {
		t.Fatalf("sigmoid double backprop: got %v, want %v", got, want)
	}
}

func TestGradUnreachableIsNil(t *testing.T) {
	a := Var(tensor.Full(1, 2, 2))
	b := Var(tensor.Full(2, 2, 2))
	y := SumAll(Square(a))
	gs := Grad(y, []*Node{a, b})
	if gs[0] == nil {
		t.Fatal("gradient of reachable var must not be nil")
	}
	if gs[1] != nil {
		t.Fatal("gradient of unreachable var must be nil")
	}
	// GradValues fills zeros for unreachable nodes.
	vs := GradValues(y, []*Node{b})
	if tensor.SumAll(vs[0]) != 0 {
		t.Fatal("GradValues of unreachable var must be zero")
	}
}

func TestConstBlocksGradient(t *testing.T) {
	a := Var(tensor.Full(3, 2, 2))
	c := Const(tensor.Full(2, 2, 2))
	y := SumAll(Mul(a, c))
	if got := GradValues(y, []*Node{a})[0]; !got.EqualApprox(tensor.Full(2, 2, 2), 1e-12) {
		t.Fatalf("grad through const mul = %v", got)
	}
}

func TestGradAccumulationFanOut(t *testing.T) {
	// y = sum(x) + sum(x²): gradient = 1 + 2x.
	x := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	xv := Var(x)
	y := Add(SumAll(xv), SumAll(Square(xv)))
	g := GradValues(y, []*Node{xv})[0]
	want := tensor.FromSlice([]float64{3, 5, 7}, 1, 3)
	if !g.EqualApprox(want, 1e-12) {
		t.Fatalf("fan-out grad = %v, want %v", g, want)
	}
}

func TestGradRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Grad")
		}
	}()
	x := Var(tensor.New(2, 2))
	Grad(Square(x), []*Node{x})
}

// Property: gradient of SumAll is all-ones for any shape/value.
func TestSumAllGradProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.Randn(r, 1, 2, 3)
		xv := Var(x)
		g := GradValues(SumAll(xv), []*Node{xv})[0]
		return g.EqualApprox(tensor.Full(1, 2, 3), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — grad of sum(a·x) is a·ones.
func TestScaleGradLinearityProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		x := Var(tensor.Full(1, 2, 2))
		g := GradValues(SumAll(Scale(x, a)), []*Node{x})[0]
		return g.EqualApprox(tensor.Full(a, 2, 2), math.Abs(a)*1e-12+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
