// Package autodiff implements an eager reverse-mode automatic
// differentiation engine over internal/tensor.
//
// The defining property of this engine — and the reason it exists instead
// of hand-written backprop — is that vector-Jacobian products (VJPs) are
// themselves built out of graph operations. Gradients returned by Grad are
// ordinary nodes, so Grad can be applied to functions of gradients. This
// "double backprop" is exactly what the Data-Reconstruction Inference
// Attack (DRIA / deep-leakage-from-gradients) requires: it minimises
// ‖∇W(x) − g*‖² with respect to the *input* x, which needs gradients of
// gradients.
//
// Evaluation is eager: every operation computes its Value at construction
// time, and Grad builds (and eagerly evaluates) new nodes for the backward
// pass.
package autodiff

import (
	"fmt"

	"github.com/gradsec/gradsec/internal/tensor"
)

// Node is one vertex of the computation graph. Nodes are immutable after
// construction.
type Node struct {
	// Value is the eagerly computed result of this node.
	Value *tensor.Tensor

	op        string
	inputs    []*Node
	needsGrad bool

	// vjp maps the gradient flowing into this node to the gradients of its
	// inputs, expressed as graph nodes so that they remain differentiable.
	// nil entries mean "no gradient for this input".
	vjp func(g *Node) []*Node
}

// Var returns a differentiable leaf wrapping t.
func Var(t *tensor.Tensor) *Node {
	return &Node{Value: t, op: "var", needsGrad: true}
}

// Const returns a non-differentiable leaf wrapping t. Gradients do not
// flow into constants.
func Const(t *tensor.Tensor) *Node {
	return &Node{Value: t, op: "const"}
}

// Op returns the operation name that produced this node ("var" and "const"
// for leaves).
func (n *Node) Op() string { return n.op }

// NeedsGrad reports whether gradients flow through this node.
func (n *Node) NeedsGrad() bool { return n.needsGrad }

func newOp(op string, value *tensor.Tensor, vjp func(g *Node) []*Node, inputs ...*Node) *Node {
	needs := false
	for _, in := range inputs {
		if in.needsGrad {
			needs = true
			break
		}
	}
	return &Node{Value: value, op: op, inputs: inputs, needsGrad: needs, vjp: vjp}
}

// Add returns a + b.
func Add(a, b *Node) *Node {
	return newOp("add", tensor.Add(a.Value, b.Value), func(g *Node) []*Node {
		return []*Node{g, g}
	}, a, b)
}

// Sub returns a - b.
func Sub(a, b *Node) *Node {
	return newOp("sub", tensor.Sub(a.Value, b.Value), func(g *Node) []*Node {
		return []*Node{g, Neg(g)}
	}, a, b)
}

// Mul returns the elementwise product a*b.
func Mul(a, b *Node) *Node {
	return newOp("mul", tensor.Mul(a.Value, b.Value), func(g *Node) []*Node {
		return []*Node{Mul(g, b), Mul(g, a)}
	}, a, b)
}

// Neg returns -a.
func Neg(a *Node) *Node { return Scale(a, -1) }

// Scale returns a*s for a scalar s.
func Scale(a *Node, s float64) *Node {
	return newOp("scale", tensor.Scale(a.Value, s), func(g *Node) []*Node {
		return []*Node{Scale(g, s)}
	}, a)
}

// Square returns a*a elementwise.
func Square(a *Node) *Node { return Mul(a, a) }

// MatMul returns the matrix product a·b of 2-D nodes.
func MatMul(a, b *Node) *Node {
	return newOp("matmul", tensor.MatMul(a.Value, b.Value), func(g *Node) []*Node {
		// d/dA = G·Bᵀ ; d/dB = Aᵀ·G
		return []*Node{MatMul(g, Transpose(b)), MatMul(Transpose(a), g)}
	}, a, b)
}

// Transpose returns the transpose of a 2-D node.
func Transpose(a *Node) *Node {
	return newOp("transpose", tensor.Transpose(a.Value), func(g *Node) []*Node {
		return []*Node{Transpose(g)}
	}, a)
}

// Reshape returns a view of a with the given shape (copy-free on values;
// gradients are reshaped back).
func Reshape(a *Node, shape ...int) *Node {
	orig := append([]int(nil), a.Value.Shape...)
	return newOp("reshape", a.Value.Reshape(shape...), func(g *Node) []*Node {
		return []*Node{Reshape(g, orig...)}
	}, a)
}

// Exp returns e^a elementwise.
func Exp(a *Node) *Node {
	out := tensor.Exp(a.Value)
	var n *Node
	n = newOp("exp", out, func(g *Node) []*Node {
		return []*Node{Mul(g, n)}
	}, a)
	return n
}

// Log returns ln(a) elementwise.
func Log(a *Node) *Node {
	return newOp("log", tensor.Log(a.Value), func(g *Node) []*Node {
		return []*Node{Mul(g, Reciprocal(a))}
	}, a)
}

// Reciprocal returns 1/a elementwise.
func Reciprocal(a *Node) *Node {
	out := tensor.Apply(a.Value, func(v float64) float64 { return 1 / v })
	var n *Node
	n = newOp("recip", out, func(g *Node) []*Node {
		// d(1/a) = -1/a² = -(1/a)·(1/a)
		return []*Node{Neg(Mul(g, Mul(n, n)))}
	}, a)
	return n
}

// Sigmoid returns 1/(1+e^-a) elementwise. Its VJP is fully differentiable
// (g·s·(1−s)), which is why the DRIA model zoo uses sigmoid activations.
func Sigmoid(a *Node) *Node {
	out := tensor.Apply(a.Value, sigmoid)
	var n *Node
	n = newOp("sigmoid", out, func(g *Node) []*Node {
		one := Const(tensor.Full(1, n.Value.Shape...))
		return []*Node{Mul(g, Mul(n, Sub(one, n)))}
	}, a)
	return n
}

func sigmoid(v float64) float64 {
	if v >= 0 {
		e := exp(-v)
		return 1 / (1 + e)
	}
	e := exp(v)
	return e / (1 + e)
}

// Tanh returns tanh(a) elementwise with a differentiable VJP g·(1−t²).
func Tanh(a *Node) *Node {
	out := tensor.Apply(a.Value, tanh)
	var n *Node
	n = newOp("tanh", out, func(g *Node) []*Node {
		one := Const(tensor.Full(1, n.Value.Shape...))
		return []*Node{Mul(g, Sub(one, Mul(n, n)))}
	}, a)
	return n
}

// ReLU returns max(a, 0). The active-set mask is captured at construction
// and treated as locally constant in the VJP (the standard subgradient
// convention; second derivatives through the mask are zero a.e.).
func ReLU(a *Node) *Node {
	mask := tensor.Apply(a.Value, func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	})
	out := tensor.Mul(a.Value, mask)
	return newOp("relu", out, func(g *Node) []*Node {
		return []*Node{Mul(g, Const(mask))}
	}, a)
}

// SumAll reduces a to a scalar-shaped [1,1] node.
func SumAll(a *Node) *Node {
	shape := append([]int(nil), a.Value.Shape...)
	v := tensor.FromSlice([]float64{tensor.SumAll(a.Value)}, 1, 1)
	return newOp("sumall", v, func(g *Node) []*Node {
		// Broadcast the scalar gradient to the input shape.
		return []*Node{BroadcastScalar(g, shape...)}
	}, a)
}

// BroadcastScalar expands a [1,1] node to an arbitrary shape.
func BroadcastScalar(a *Node, shape ...int) *Node {
	if a.Value.Size() != 1 {
		panic(fmt.Sprintf("autodiff: BroadcastScalar requires a scalar node, got shape %v", a.Value.Shape))
	}
	return newOp("bscalar", tensor.Full(a.Value.Data[0], shape...), func(g *Node) []*Node {
		return []*Node{SumAll(g)}
	}, a)
}

// RowSum reduces a [r,c] node over columns producing [r,1].
func RowSum(a *Node) *Node {
	c := a.Value.Shape[1]
	return newOp("rowsum", tensor.RowSum(a.Value), func(g *Node) []*Node {
		return []*Node{BroadcastCol(g, c)}
	}, a)
}

// ColSum reduces a [r,c] node over rows producing [1,c].
func ColSum(a *Node) *Node {
	r := a.Value.Shape[0]
	return newOp("colsum", tensor.ColSum(a.Value), func(g *Node) []*Node {
		return []*Node{BroadcastRow(g, r)}
	}, a)
}

// BroadcastCol expands an [r,1] node to [r,c].
func BroadcastCol(a *Node, c int) *Node {
	return newOp("bcol", tensor.BroadcastCol(a.Value, c), func(g *Node) []*Node {
		return []*Node{RowSum(g)}
	}, a)
}

// BroadcastRow expands a [1,c] node to [r,c].
func BroadcastRow(a *Node, r int) *Node {
	return newOp("brow", tensor.BroadcastRow(a.Value, r), func(g *Node) []*Node {
		return []*Node{ColSum(g)}
	}, a)
}

// RowMaxConst returns the per-row maximum of a as a *constant* node.
// It exists for numerically stable log-sum-exp; because the max is locally
// constant, treating it as such does not change gradients.
func RowMaxConst(a *Node) *Node {
	return Const(tensor.RowMax(a.Value))
}

// Im2Col unfolds a 4-D [N,C,H,W] node into the convolution column matrix
// for geometry g. Its VJP is Col2Im, the exact adjoint.
func Im2Col(a *Node, g tensor.ConvGeom) *Node {
	return newOp("im2col", tensor.Im2Col(a.Value, g), func(grad *Node) []*Node {
		return []*Node{Col2Im(grad, g)}
	}, a)
}

// Col2Im scatter-adds a column matrix node back to input shape for
// geometry g. Its VJP is Im2Col.
func Col2Im(a *Node, g tensor.ConvGeom) *Node {
	return newOp("col2im", tensor.Col2Im(a.Value, g), func(grad *Node) []*Node {
		return []*Node{Im2Col(grad, g)}
	}, a)
}

// MaxPool applies k×k max pooling with the given stride to a 4-D node.
// Argmax routing indices are captured at construction and treated as
// locally constant in the VJP (standard practice).
func MaxPool(a *Node, k, stride int) *Node {
	out, arg := tensor.MaxPool2D(a.Value, k, stride)
	inShape := append([]int(nil), a.Value.Shape...)
	return newOp("maxpool", out, func(g *Node) []*Node {
		return []*Node{maxUnpool(g, arg, inShape)}
	}, a)
}

// maxUnpool scatters pooled gradients back through captured argmax indices.
// Because the indices are constant, its own VJP is the gather (pool-read).
func maxUnpool(a *Node, arg []int, inShape []int) *Node {
	outShape := append([]int(nil), a.Value.Shape...)
	return newOp("maxunpool", tensor.MaxUnpool2D(a.Value, arg, inShape), func(g *Node) []*Node {
		return []*Node{gather(g, arg, outShape)}
	}, a)
}

// Gather reads elements of a at the given flat indices, producing a node
// of outShape with out.Data[i] = a.Data[idx[i]]. Its VJP scatter-adds
// gradients back, so for bijective idx (a permutation) Gather is an exact
// orthogonal re-layout; nn uses it to convert convolution column output
// [N*OH*OW, F] to feature-map layout [N, F, OH, OW].
func Gather(a *Node, idx []int, outShape ...int) *Node {
	return gather(a, idx, outShape)
}

// gather reads elements at arg from a, producing outShape. Adjoint of
// maxUnpool's scatter.
func gather(a *Node, arg []int, outShape []int) *Node {
	out := tensor.New(outShape...)
	for i, idx := range arg {
		out.Data[i] = a.Value.Data[idx]
	}
	inShape := append([]int(nil), a.Value.Shape...)
	return newOp("gather", out, func(g *Node) []*Node {
		return []*Node{maxUnpool(g, arg, inShape)}
	}, a)
}

// AddRowBias adds a [1,c] bias node to every row of an [r,c] node.
func AddRowBias(x, b *Node) *Node {
	r := x.Value.Shape[0]
	return Add(x, BroadcastRow(b, r))
}

// Scalar extracts the single float of a [1,1]-shaped node's value.
func Scalar(a *Node) float64 {
	if a.Value.Size() != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on non-scalar node of shape %v", a.Value.Shape))
	}
	return a.Value.Data[0]
}
