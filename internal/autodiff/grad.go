package autodiff

import (
	"fmt"
	"math"

	"github.com/gradsec/gradsec/internal/tensor"
)

func exp(v float64) float64  { return math.Exp(v) }
func tanh(v float64) float64 { return math.Tanh(v) }

// Grad computes ∂y/∂w for every node w in wrt, where y must be
// scalar-shaped ([1,1] or a single element). The returned gradients are
// graph nodes built from differentiable primitives, so they can be fed
// back into Grad (double backprop). Entries are nil when y does not depend
// on the corresponding node or the node is a constant.
func Grad(y *Node, wrt []*Node) []*Node {
	if y.Value.Size() != 1 {
		panic(fmt.Sprintf("autodiff: Grad requires a scalar output, got shape %v", y.Value.Shape))
	}

	order := topoSort(y)
	grads := make(map[*Node]*Node, len(order))
	grads[y] = Const(tensor.Full(1, y.Value.Shape...))

	// Reverse topological order: outputs before inputs.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		g, ok := grads[n]
		if !ok || n.vjp == nil {
			continue
		}
		inGrads := n.vjp(g)
		if len(inGrads) != len(n.inputs) {
			panic(fmt.Sprintf("autodiff: op %q returned %d input gradients for %d inputs", n.op, len(inGrads), len(n.inputs)))
		}
		for j, in := range n.inputs {
			ig := inGrads[j]
			if ig == nil || !in.needsGrad {
				continue
			}
			if acc, ok := grads[in]; ok {
				grads[in] = Add(acc, ig)
			} else {
				grads[in] = ig
			}
		}
	}

	out := make([]*Node, len(wrt))
	for i, w := range wrt {
		out[i] = grads[w] // nil when unreachable
	}
	return out
}

// GradValues is a convenience wrapper returning gradient tensors (zero
// tensors where the output does not depend on the node).
func GradValues(y *Node, wrt []*Node) []*tensor.Tensor {
	gs := Grad(y, wrt)
	out := make([]*tensor.Tensor, len(gs))
	for i, g := range gs {
		if g == nil {
			out[i] = tensor.New(wrt[i].Value.Shape...)
		} else {
			out[i] = g.Value
		}
	}
	return out
}

// topoSort returns the nodes reachable from y in topological order
// (inputs before outputs), restricted to the subgraph that needs
// gradients. Iterative DFS to stay safe on deep graphs.
func topoSort(y *Node) []*Node {
	var order []*Node
	visited := make(map[*Node]bool)
	type frame struct {
		n    *Node
		next int
	}
	stack := []frame{{n: y}}
	visited[y] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.n.inputs) {
			child := f.n.inputs[f.next]
			f.next++
			if !visited[child] && child.needsGrad {
				visited[child] = true
				stack = append(stack, frame{n: child})
			}
			continue
		}
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}
	return order
}

// SoftmaxCrossEntropy computes the mean categorical cross-entropy of
// logits [m, classes] against one-hot labels y [m, classes], built
// entirely from differentiable primitives (numerically stabilised with a
// constant per-row max shift), so that it supports double backprop.
func SoftmaxCrossEntropy(logits *Node, y *tensor.Tensor) *Node {
	m, classes := logits.Value.Shape[0], logits.Value.Shape[1]
	if len(y.Shape) != 2 || y.Shape[0] != m || y.Shape[1] != classes {
		panic(fmt.Sprintf("autodiff: labels shape %v does not match logits %v", y.Shape, logits.Value.Shape))
	}
	shifted := Sub(logits, BroadcastCol(RowMaxConst(logits), classes))
	e := Exp(shifted)
	logSumExp := Log(RowSum(e))                            // [m,1]
	logp := Sub(shifted, BroadcastCol(logSumExp, classes)) // [m,classes]
	picked := SumAll(Mul(Const(y), logp))                  // Σ log p(correct)
	return Scale(picked, -1/float64(m))
}

// MSE computes the mean squared error between a node and a constant
// target with matching shape.
func MSE(pred *Node, target *tensor.Tensor) *Node {
	d := Sub(pred, Const(target))
	return Scale(SumAll(Square(d)), 1/float64(pred.Value.Size()))
}

// SqNormDiff returns ‖a − b‖² as a scalar node; b may be constant or
// differentiable. This is the building block of the DRIA matching loss.
func SqNormDiff(a, b *Node) *Node {
	d := Sub(a, b)
	return SumAll(Square(d))
}
