package attack

import "github.com/gradsec/gradsec/internal/tensor"

// Model-poisoning adversaries for the Byzantine-robustness evaluation:
// transformations a compromised client applies to its honest update
// before pushing it. Both keep dyadic-rational updates dyadic (integer
// and power-of-two factors only), so deterministic simulations can
// assert aggregate values exactly.

// SignFlip negates every coordinate in place and scales it by gamma —
// the classic sign-flipping attack: the poisoner pushes the fleet
// exactly opposite to the honest descent direction, amplified so a
// minority of attackers outweighs the honest majority under plain
// averaging. gamma <= 0 defaults to 1 (pure flip).
func SignFlip(update []*tensor.Tensor, gamma float64) {
	if gamma <= 0 {
		gamma = 1
	}
	for _, t := range update {
		if t == nil {
			continue
		}
		for i, v := range t.Data {
			t.Data[i] = -gamma * v
		}
	}
}

// ScalePoison multiplies every coordinate in place by gamma — the
// scaled-poisoning (model replacement) attack: the update keeps the
// honest direction but with inflated magnitude, dragging the plain
// average far past the honest optimum while staying inconspicuous in
// direction-based detectors.
func ScalePoison(update []*tensor.Tensor, gamma float64) {
	for _, t := range update {
		if t == nil {
			continue
		}
		for i, v := range t.Data {
			t.Data[i] = gamma * v
		}
	}
}
