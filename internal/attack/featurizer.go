package attack

import (
	"math"
	"math/rand"

	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/tensor"
)

// NumProbes is the number of random-projection features per layer. The
// paper's attack models consume raw gradient columns; fixed random
// projections are a compact proxy that preserves *directional* signal
// (e.g. the DPIA property pattern), which magnitude summaries alone
// cannot carry.
const NumProbes = 6

// Featurizer turns per-layer gradients into attack-model rows: the
// FeaturesPerLayer magnitude statistics plus NumProbes fixed random
// projections per layer.
type Featurizer struct {
	// probes[l][k] is the k-th ±1 probe over layer l's flattened params.
	probes [][][]float64
	// PerLayer is the feature-block width per layer.
	PerLayer int
}

// NewFeaturizer builds deterministic probes matching net's layer sizes.
func NewFeaturizer(net *nn.Network, seed int64) *Featurizer {
	rng := rand.New(rand.NewSource(seed))
	f := &Featurizer{PerLayer: FeaturesPerLayer + NumProbes}
	for _, layer := range net.Layers {
		n := layer.ParamCount()
		probes := make([][]float64, NumProbes)
		for k := range probes {
			p := make([]float64, n)
			for i := range p {
				if rng.Intn(2) == 0 {
					p[i] = 1
				} else {
					p[i] = -1
				}
			}
			probes[k] = p
		}
		f.probes = append(f.probes, probes)
	}
	return f
}

// Row flattens per-layer gradients into one feature row (no deletion —
// protection is applied later by GradDataset column deletion).
func (f *Featurizer) Row(grads [][]*tensor.Tensor) []float64 {
	row := make([]float64, 0, len(grads)*f.PerLayer)
	for l, layerGrads := range grads {
		stats := LayerFeatures(layerGrads)
		row = append(row, stats[:]...)
		flat := flattenGrads(layerGrads)
		scale := 1 / math.Sqrt(float64(len(flat))+1)
		for k := 0; k < NumProbes; k++ {
			dot := 0.0
			probe := f.probes[l][k]
			for i, v := range flat {
				dot += v * probe[i]
			}
			row = append(row, dot*scale)
		}
	}
	return row
}

func flattenGrads(gs []*tensor.Tensor) []float64 {
	n := 0
	for _, g := range gs {
		n += g.Size()
	}
	out := make([]float64, 0, n)
	for _, g := range gs {
		out = append(out, g.Data...)
	}
	return out
}
