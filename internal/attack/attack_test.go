package attack

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gradsec/gradsec/internal/dataset"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/tensor"
)

func TestLayerFeaturesKnown(t *testing.T) {
	g := tensor.FromSlice([]float64{3, -4}, 2)
	f := LayerFeatures([]*tensor.Tensor{g})
	if f[0] != 5 { // L2 norm
		t.Fatalf("norm = %v", f[0])
	}
	if f[1] != 3.5 { // mean |g|
		t.Fatalf("mean = %v", f[1])
	}
	if f[2] != 4 { // max |g|
		t.Fatalf("max = %v", f[2])
	}
	if math.Abs(f[3]-0.5) > 1e-12 { // std of |g|
		t.Fatalf("std = %v", f[3])
	}
}

func TestLayerFeaturesEmpty(t *testing.T) {
	f := LayerFeatures(nil)
	for _, v := range f {
		if v != 0 {
			t.Fatalf("empty features = %v", f)
		}
	}
}

func TestGradientRowDeletion(t *testing.T) {
	grads := [][]*tensor.Tensor{
		{tensor.Full(1, 2)},
		{tensor.Full(2, 2)},
		{tensor.Full(3, 2)},
	}
	row := GradientRow(grads, ProtectedSet([]int{1}))
	if len(row) != 3*FeaturesPerLayer {
		t.Fatalf("row length = %d", len(row))
	}
	for k := 0; k < FeaturesPerLayer; k++ {
		if !math.IsNaN(row[FeaturesPerLayer+k]) {
			t.Fatalf("protected layer feature %d not NaN: %v", k, row[FeaturesPerLayer+k])
		}
		if math.IsNaN(row[k]) || math.IsNaN(row[2*FeaturesPerLayer+k]) {
			t.Fatal("unprotected layer features must be present")
		}
	}
}

// DRIA on a tiny sigmoid network: with no protection the reconstruction
// must be far better than with the first conv layer protected — the
// paper's central DRIA finding.
func TestDRIAProtectionDegradesReconstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("DRIA optimisation is slow in -short mode")
	}
	rng := rand.New(rand.NewSource(1))
	net := nn.NewTinyConvNet(rng, 1, 8, 8, 4, nn.ActSigmoid)
	gen := dataset.NewGenerator(rand.New(rand.NewSource(2)), 4, 1, 8, 8, 0.02)
	x := gen.Sample(rand.New(rand.NewSource(3)), 0).Reshape(1, 1, 8, 8)
	y := dataset.OneHot([]int{0}, 4)

	cfg := DRIAConfig{Iterations: 120, Seed: 42}
	open := DRIA(net, x, y, nil, cfg)
	protectedEarly := DRIA(net, x, y, []int{0, 1}, cfg)

	if open.ImageLoss >= protectedEarly.ImageLoss {
		t.Fatalf("protection must hurt reconstruction: open %.3f vs protected %.3f",
			open.ImageLoss, protectedEarly.ImageLoss)
	}
	// Unprotected reconstruction should be decent on a tiny model.
	if open.ImageLoss > 0.5*protectedEarly.ImageLoss {
		t.Logf("open %.3f, protected %.3f (ratio %.2f)", open.ImageLoss, protectedEarly.ImageLoss,
			open.ImageLoss/protectedEarly.ImageLoss)
	}
}

func TestDRIAAllProtectedIsBlind(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := nn.NewTinyMLP(rng, 8, 6, 3, nn.ActSigmoid)
	x := tensor.Randn(rng, 1, 1, 8)
	y := dataset.OneHot([]int{1}, 3)
	res := DRIA(net, x, y, []int{0, 1}, DRIAConfig{Iterations: 5, Seed: 1})
	if res.MatchLoss != 0 {
		t.Fatalf("fully protected match loss = %v, want 0 (flat objective)", res.MatchLoss)
	}
}

func TestDRIAAdamPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := nn.NewTinyMLP(rng, 6, 5, 2, nn.ActSigmoid)
	x := tensor.Randn(rng, 1, 1, 6)
	y := dataset.OneHot([]int{0}, 2)
	res := DRIA(net, x, y, nil, DRIAConfig{Iterations: 30, UseAdam: true, Seed: 2})
	if res.Reconstruction == nil || math.IsNaN(res.MatchLoss) {
		t.Fatal("Adam DRIA produced invalid result")
	}
}

// MIA on an overfit tiny model: unprotected AUC must be well above
// chance; protection must never help the attacker, and protecting every
// layer must reduce the attack to a random guess (all columns deleted →
// imputed constants). Intermediate configurations decline much more
// gently — at this scale summary features are layer-redundant, a
// documented deviation from Figure 6's intermediate points
// (EXPERIMENTS.md).
func TestMIAProtectionEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("MIA victim training is slow in -short mode")
	}
	gen := dataset.NewGenerator(rand.New(rand.NewSource(10)), 4, 1, 8, 8, 1.2)
	cfg := MIAConfig{VictimSteps: 500, BatchSize: 8, AttackSamples: 48, Seed: 11}
	mk := func() *nn.Network {
		return nn.NewTinyConvNet(rand.New(rand.NewSource(12)), 1, 8, 8, 4, nn.ActReLU)
	}

	open := MIA(mk(), gen, nil, cfg)
	if open.VictimTrainAcc < 0.9 {
		t.Fatalf("victim not overfit: train acc %.2f", open.VictimTrainAcc)
	}
	if open.AUC < 0.7 {
		t.Fatalf("unprotected MIA AUC = %.3f, want ≥0.7", open.AUC)
	}

	tail := MIA(mk(), gen, []int{2}, cfg)
	if tail.AUC > open.AUC+0.05 {
		t.Fatalf("protection must not help the attacker: open %.3f vs tail %.3f", open.AUC, tail.AUC)
	}

	all := MIA(mk(), gen, []int{0, 1, 2}, cfg)
	if math.Abs(all.AUC-0.5) > 0.15 {
		t.Fatalf("full protection must reduce MIA to chance: AUC %.3f", all.AUC)
	}
}

// DPIA: unprotected AUC must be high; a dynamic schedule must reduce it.
func TestDPIADynamicProtectionReducesAUC(t *testing.T) {
	if testing.Short() {
		t.Skip("DPIA cycle training is slow in -short mode")
	}
	mk := func() (*nn.Network, *dataset.FaceGenerator) {
		return nn.NewTinyConvNet(rand.New(rand.NewSource(20)), 1, 8, 8, 2, nn.ActReLU),
			dataset.NewFaceGenerator(rand.New(rand.NewSource(21)), 2, 1, 8, 8, 0.05)
	}
	cfg := DPIAConfig{Cycles: 80, ItersPerCycle: 1, BatchSize: 6, Seed: 22}

	net, gen := mk()
	open := DPIA(net, gen, nil, cfg)
	if open.AUC < 0.8 {
		t.Fatalf("unprotected DPIA AUC = %.3f, want ≥0.8", open.AUC)
	}

	net2, gen2 := mk()
	// Dynamic window cycling over all 3 layers (size 2 → 2 positions).
	sched := func(c int) []int {
		if c%2 == 0 {
			return []int{0, 1}
		}
		return []int{1, 2}
	}
	dyn := DPIA(net2, gen2, sched, cfg)
	if dyn.AUC >= open.AUC {
		t.Fatalf("dynamic protection must reduce AUC: open %.3f vs dynamic %.3f", open.AUC, dyn.AUC)
	}
}

func TestSelectVMW(t *testing.T) {
	cands := [][]float64{{1, 0}, {0.5, 0.5}, {0, 1}}
	best, auc := SelectVMW(cands, func(v []float64) float64 {
		return v[0] // pretend AUC equals first component
	})
	if auc != 0 || best[0] != 0 {
		t.Fatalf("SelectVMW = %v, %v", best, auc)
	}
}

func TestProtectedSet(t *testing.T) {
	s := ProtectedSet([]int{1, 3})
	if !s[1] || !s[3] || s[0] {
		t.Fatalf("set = %v", s)
	}
}
