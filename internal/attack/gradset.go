package attack

import (
	"math"
	"math/rand"

	"github.com/gradsec/gradsec/internal/ensemble"
	"github.com/gradsec/gradsec/internal/metrics"
)

// GradDataset is the attacker's D_grad: one feature row per observation
// (per sample for MIA, per cycle for DPIA) with per-layer feature blocks.
// Protection is evaluated the way the paper does (§8.1): delete the
// columns of protected layers, mean-impute, train, measure AUC — so one
// expensive victim run supports every protection configuration.
type GradDataset struct {
	Rows   [][]float64
	Labels []bool
	// Layers is the number of per-layer feature blocks in each row.
	Layers int
	// PerLayer is the width of each layer's feature block
	// (FeaturesPerLayer when rows come from GradientRow; larger when a
	// Featurizer adds projections).
	PerLayer int
}

// deleteColumns returns a copy of the rows with protected layers' feature
// blocks replaced by NaN. For dynamic schedules, protection varies per
// row (row index = FL cycle).
func (d *GradDataset) deleteColumns(protectedFor func(row int) map[int]bool) [][]float64 {
	out := make([][]float64, len(d.Rows))
	for i, row := range d.Rows {
		cp := append([]float64(nil), row...)
		prot := protectedFor(i)
		w := d.PerLayer
		if w == 0 {
			w = FeaturesPerLayer
		}
		for l := 0; l < d.Layers; l++ {
			if !prot[l] {
				continue
			}
			for k := 0; k < w; k++ {
				cp[l*w+k] = math.NaN()
			}
		}
		out[i] = cp
	}
	return out
}

// Model abstracts the attack classifier used by EvalProtection.
type Model interface {
	PredictProb(sample []float64) float64
}

// FitFunc trains an attack model on imputed, normalised features.
type FitFunc func(x [][]float64, y []bool) Model

// LogisticAttack is the MIA attack-model trainer.
func LogisticAttack(x [][]float64, y []bool) Model {
	return ensemble.FitLogistic(x, y, ensemble.LogisticConfig{Epochs: 400, LR: 0.3})
}

// ForestAttack returns a DPIA attack-model trainer (random forest, as in
// the paper) with the given seed.
func ForestAttack(seed int64) FitFunc {
	return func(x [][]float64, y []bool) Model {
		return ensemble.FitForest(x, y, ensemble.ForestConfig{Trees: 40, Seed: seed})
	}
}

// EvalStatic evaluates a fixed protected layer set: delete, split,
// impute, train, AUC on the held-out half.
func (d *GradDataset) EvalStatic(protectedLayers []int, fit FitFunc, seed int64) float64 {
	prot := ProtectedSet(protectedLayers)
	return d.EvalSchedule(func(int) map[int]bool { return prot }, fit, seed)
}

// EvalSchedule evaluates a per-row protection schedule (dynamic GradSec:
// row index = FL cycle).
func (d *GradDataset) EvalSchedule(protectedFor func(row int) map[int]bool, fit FitFunc, seed int64) float64 {
	rows := d.deleteColumns(protectedFor)
	rng := rand.New(rand.NewSource(seed))
	trainX, trainY, testX, testY := split(rng, rows, d.Labels, 0.6)
	means := ensemble.MeanImpute(trainX)
	ensemble.ApplyImpute(testX, means)
	normalize(trainX, testX)
	model := fit(trainX, trainY)
	scores := make([]float64, len(testX))
	for i, row := range testX {
		scores[i] = model.PredictProb(row)
	}
	return metrics.AUC(testY, scores)
}
