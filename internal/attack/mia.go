package attack

import (
	"math/rand"

	"github.com/gradsec/gradsec/internal/dataset"
	"github.com/gradsec/gradsec/internal/metrics"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/opt"
)

// MIAConfig configures the membership-inference experiment.
type MIAConfig struct {
	// VictimSteps trains the victim model into the overfitting regime
	// where membership leaks (0 = 500). Membership inference needs
	// memorisation: small member sets and many steps.
	VictimSteps int
	// MembersPerClass sizes the victim training set (0 = 5).
	MembersPerClass int
	// VictimLR is the victim training rate (0 = 0.1).
	VictimLR float64
	// BatchSize for victim training (0 = 8).
	BatchSize int
	// AttackSamples per class (member/non-member) in D_grad (0 = 96).
	AttackSamples int
	// Seed drives all randomness.
	Seed int64
}

// MIAResult reports the attack quality.
type MIAResult struct {
	// AUC of the attack model on held-out gradients (the paper's metric).
	AUC float64
	// VictimTrainAcc indicates the overfitting level reached.
	VictimTrainAcc float64
}

// MIA runs the membership-inference attack of the paper's §3.2: the
// attacker holds data known to be in the training set (D1 ⊂ D) and data
// known not to be (D2 ⊄ D), builds a gradient dataset from the victim
// model, trains a binary attack classifier, and scores membership of
// unseen points by their gradients. Protected layers' gradient columns
// are deleted (NaN) and mean-imputed, per §8.1.
//
// The victim net is trained inside this function on members drawn from
// gen; pass protectedLayers to evaluate a GradSec configuration.
func MIA(net *nn.Network, gen *dataset.Generator, protectedLayers []int, cfg MIAConfig) MIAResult {
	if cfg.VictimSteps == 0 {
		cfg.VictimSteps = 500
	}
	if cfg.MembersPerClass == 0 {
		cfg.MembersPerClass = 5
	}
	if cfg.VictimLR == 0 {
		cfg.VictimLR = 0.1
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.AttackSamples == 0 {
		cfg.AttackSamples = 96
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protected := ProtectedSet(protectedLayers)

	// Victim training set (the members): deliberately small so the model
	// memorises individual samples rather than class structure.
	members := gen.FixedSet(rng, cfg.MembersPerClass)
	o := opt.NewSGD(cfg.VictimLR, 0.9)
	for s := 0; s < cfg.VictimSteps; s++ {
		x, y := members.RandomBatch(rng, cfg.BatchSize)
		net.TrainStep(x, y, o)
	}
	xAll, yAll := members.Batch(seq(members.Len()))
	trainAcc := net.Accuracy(xAll, yAll)

	// D_grad: per-sample gradients of members and fresh non-members.
	d := buildMIARows(net, gen, members, cfg.AttackSamples, rng)
	auc := d.EvalStatic(setToList(protected), LogisticAttack, cfg.Seed+1)
	return MIAResult{AUC: auc, VictimTrainAcc: trainAcc}
}

// BuildMIADataset trains the victim into the overfitting regime and
// builds the full (unprotected) membership gradient dataset once; use
// GradDataset.EvalStatic to score every protection configuration, as the
// paper's §8.1 does with column deletion.
func BuildMIADataset(net *nn.Network, gen *dataset.Generator, cfg MIAConfig) (*GradDataset, float64) {
	if cfg.VictimSteps == 0 {
		cfg.VictimSteps = 500
	}
	if cfg.MembersPerClass == 0 {
		cfg.MembersPerClass = 5
	}
	if cfg.VictimLR == 0 {
		cfg.VictimLR = 0.1
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.AttackSamples == 0 {
		cfg.AttackSamples = 96
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	members := gen.FixedSet(rng, cfg.MembersPerClass)
	o := opt.NewSGD(cfg.VictimLR, 0.9)
	for s := 0; s < cfg.VictimSteps; s++ {
		x, y := members.RandomBatch(rng, cfg.BatchSize)
		net.TrainStep(x, y, o)
	}
	xAll, yAll := members.Batch(seq(members.Len()))
	return buildMIARows(net, gen, members, cfg.AttackSamples, rng), net.Accuracy(xAll, yAll)
}

func buildMIARows(net *nn.Network, gen *dataset.Generator, members *dataset.Dataset, n int, rng *rand.Rand) *GradDataset {
	fz := NewFeaturizer(net, 12345)
	d := &GradDataset{Layers: net.NumLayers(), PerLayer: fz.PerLayer}
	for i := 0; i < n; i++ {
		mi := rng.Intn(members.Len())
		x, lab := members.Sample(mi)
		y := dataset.OneHot([]int{lab}, gen.Classes)
		d.Rows = append(d.Rows, fz.Row(SampleGradients(net, x, y)))
		d.Labels = append(d.Labels, true)
		cls := rng.Intn(gen.Classes)
		nx := gen.Sample(rng, cls).Reshape(1, gen.C, gen.H, gen.W)
		ny := dataset.OneHot([]int{cls}, gen.Classes)
		d.Rows = append(d.Rows, fz.Row(SampleGradients(net, nx, ny)))
		d.Labels = append(d.Labels, false)
	}
	return d
}

func setToList(s map[int]bool) []int {
	var out []int
	for l := range s {
		out = append(out, l)
	}
	return out
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func split(rng *rand.Rand, rows [][]float64, labels []bool, frac float64) (trX [][]float64, trY []bool, teX [][]float64, teY []bool) {
	perm := rng.Perm(len(rows))
	cut := int(frac * float64(len(rows)))
	for k, i := range perm {
		if k < cut {
			trX = append(trX, rows[i])
			trY = append(trY, labels[i])
		} else {
			teX = append(teX, rows[i])
			teY = append(teY, labels[i])
		}
	}
	return
}

// normalize standardises columns using training statistics (logistic
// regression needs comparable scales across layer features).
func normalize(train, test [][]float64) {
	if len(train) == 0 {
		return
	}
	d := len(train[0])
	for j := 0; j < d; j++ {
		col := make([]float64, len(train))
		for i, row := range train {
			col[i] = row[j]
		}
		mean, std := metrics.MeanStd(col)
		if std == 0 {
			std = 1
		}
		for _, row := range train {
			row[j] = (row[j] - mean) / std
		}
		for _, row := range test {
			row[j] = (row[j] - mean) / std
		}
	}
}
