package attack

import (
	"math/rand"

	"github.com/gradsec/gradsec/internal/dataset"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/opt"
	"github.com/gradsec/gradsec/internal/tensor"
)

// Schedule maps an FL cycle to its protected layer set (nil = none).
// core.Plan.ProtectedLayers adapts directly.
type Schedule func(cycle int) []int

// DPIAConfig configures the data-property inference experiment.
type DPIAConfig struct {
	// Cycles is the number of FL cycles observed (0 = 120). DPIA is a
	// long-term attack: it aggregates across many cycles (§8).
	Cycles int
	// ItersPerCycle is the local iterations per cycle (0 = 2).
	ItersPerCycle int
	// BatchSize per iteration (0 = 8).
	BatchSize int
	// LR is the victim's learning rate (0 = 0.05).
	LR float64
	// PropFrac is the fraction of property-carrying samples inside a
	// property cycle (0 = 0.5).
	PropFrac float64
	// Seed drives all randomness.
	Seed int64
}

// DPIAResult reports the attack quality.
type DPIAResult struct {
	// AUC of the random-forest attack model on held-out cycles.
	AUC float64
}

// DPIA runs the data-property inference attack of §3.2: across FL
// cycles, the malicious client diffs consecutive model snapshots to get
// aggregated gradients, labels each cycle by whether the private
// property was present in the victim's batches, and trains a random
// forest to detect the property. TEE-protected layers (which may change
// per cycle under dynamic GradSec) are deleted from the observation and
// mean-imputed, per §8.1.
func DPIA(net *nn.Network, gen *dataset.FaceGenerator, schedule Schedule, cfg DPIAConfig) DPIAResult {
	if cfg.Cycles == 0 {
		cfg.Cycles = 120
	}
	if cfg.ItersPerCycle == 0 {
		cfg.ItersPerCycle = 2
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.PropFrac == 0 {
		cfg.PropFrac = 0.5
	}
	d := BuildDPIADataset(net, gen, cfg)
	var protectedFor func(row int) map[int]bool
	if schedule == nil {
		protectedFor = func(int) map[int]bool { return nil }
	} else {
		protectedFor = func(row int) map[int]bool { return ProtectedSet(schedule(row)) }
	}
	auc := d.EvalSchedule(protectedFor, ForestAttack(cfg.Seed+1), cfg.Seed+2)
	return DPIAResult{AUC: auc}
}

// BuildDPIADataset runs the victim's FL cycles once and collects the full
// (unprotected) per-cycle aggregated gradient dataset; protection
// configurations are then evaluated by column deletion
// (GradDataset.EvalStatic / EvalSchedule), as the paper's §8.1 does.
func BuildDPIADataset(net *nn.Network, gen *dataset.FaceGenerator, cfg DPIAConfig) *GradDataset {
	if cfg.Cycles == 0 {
		cfg.Cycles = 120
	}
	if cfg.ItersPerCycle == 0 {
		cfg.ItersPerCycle = 2
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.PropFrac == 0 {
		cfg.PropFrac = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	o := opt.NewSGD(cfg.LR, 0)
	fz := NewFeaturizer(net, 54321)
	d := &GradDataset{Layers: net.NumLayers(), PerLayer: fz.PerLayer}
	for c := 0; c < cfg.Cycles; c++ {
		withProp := rng.Intn(2) == 0
		before := net.StateDict()
		for it := 0; it < cfg.ItersPerCycle; it++ {
			x, y := gen.Batch(rng, cfg.BatchSize, withProp, cfg.PropFrac)
			net.TrainStep(x, y, o)
		}
		// Aggregated gradients: snapshot difference (Flaw 1 at FL-cycle
		// granularity), per layer.
		d.Rows = append(d.Rows, fz.Row(snapshotDiff(net, before)))
		d.Labels = append(d.Labels, withProp)
	}
	return d
}

// snapshotDiff returns per-layer parameter deltas since the snapshot.
func snapshotDiff(net *nn.Network, before []*tensor.Tensor) [][]*tensor.Tensor {
	out := make([][]*tensor.Tensor, net.NumLayers())
	k := 0
	for i, layer := range net.Layers {
		for _, p := range layer.Params() {
			out[i] = append(out[i], tensor.Sub(p, before[k]))
			k++
		}
	}
	return out
}

// SelectVMW implements the paper's VMW tuning loop (§8.2): for each
// candidate distribution, evaluate the attack and keep the candidate with
// the *lowest* AUC — the defender picks the distribution that hurts the
// strongest attack most.
func SelectVMW(candidates [][]float64, eval func(vmw []float64) float64) (best []float64, bestAUC float64) {
	bestAUC = 2
	for _, vmw := range candidates {
		if auc := eval(vmw); auc < bestAUC {
			bestAUC = auc
			best = vmw
		}
	}
	return best, bestAUC
}
