// Package attack implements the three client-side inference attacks the
// paper evaluates GradSec against:
//
//   - DRIA — data-reconstruction inference attack (deep leakage from
//     gradients, Zhu et al. 2019): gradient matching with L-BFGS/Adam
//     over the *observable* per-layer gradients;
//   - MIA — membership inference attack (Nasr et al. 2019): a binary
//     classifier over per-layer gradient features of individual samples;
//   - DPIA — data-property inference attack (Melis et al. 2019): a random
//     forest over aggregated cross-cycle gradient features.
//
// TEE protection is modelled exactly as the paper's §8.1 does: "we simply
// delete from D_grad all the gradients columns relative to a protected
// layer". Deleted columns become NaN and are mean-imputed before attack-
// model training — also the paper's strategy.
package attack

import (
	"math"

	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/tensor"
)

// FeaturesPerLayer is the number of summary statistics extracted per
// layer gradient: L2 norm, mean |g|, max |g|, std.
const FeaturesPerLayer = 4

// LayerFeatures summarises one layer's gradient tensors into fixed
// statistics. Gradient magnitudes are what membership and property
// signals modulate.
func LayerFeatures(grads []*tensor.Tensor) [FeaturesPerLayer]float64 {
	n := 0
	sumSq, sumAbs, maxAbs := 0.0, 0.0, 0.0
	for _, g := range grads {
		for _, v := range g.Data {
			sumSq += v * v
			a := math.Abs(v)
			sumAbs += a
			if a > maxAbs {
				maxAbs = a
			}
			n++
		}
	}
	if n == 0 {
		return [FeaturesPerLayer]float64{}
	}
	mean := sumAbs / float64(n)
	variance := 0.0
	for _, g := range grads {
		for _, v := range g.Data {
			d := math.Abs(v) - mean
			variance += d * d
		}
	}
	return [FeaturesPerLayer]float64{
		math.Sqrt(sumSq),
		mean,
		maxAbs,
		math.Sqrt(variance / float64(n)),
	}
}

// GradientRow flattens per-layer gradients into one attack-model feature
// row, writing NaN into every column of a protected layer (the paper's
// deletion semantics).
func GradientRow(grads [][]*tensor.Tensor, protected map[int]bool) []float64 {
	row := make([]float64, 0, len(grads)*FeaturesPerLayer)
	for l, layerGrads := range grads {
		if protected[l] {
			for k := 0; k < FeaturesPerLayer; k++ {
				row = append(row, math.NaN())
			}
			continue
		}
		f := LayerFeatures(layerGrads)
		row = append(row, f[:]...)
	}
	return row
}

// SampleGradients computes the per-sample gradient of the network's loss
// — the attacker's raw observation for one data point.
func SampleGradients(net *nn.Network, x, y *tensor.Tensor) [][]*tensor.Tensor {
	_, grads := net.Gradients(x, y)
	return grads
}

// ProtectedSet converts a layer list to a set.
func ProtectedSet(layers []int) map[int]bool {
	out := make(map[int]bool, len(layers))
	for _, l := range layers {
		out[l] = true
	}
	return out
}
