package attack

import (
	"math/rand"

	ad "github.com/gradsec/gradsec/internal/autodiff"
	"github.com/gradsec/gradsec/internal/metrics"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/opt"
	"github.com/gradsec/gradsec/internal/tensor"
)

// DRIAConfig configures the data-reconstruction attack.
type DRIAConfig struct {
	// Iterations bounds the optimizer (0 = 100).
	Iterations int
	// UseAdam selects Adam instead of L-BFGS (the DLG paper uses L-BFGS;
	// Adam is steadier on deep/pooled models like AlexNet).
	UseAdam bool
	// AdamLR is Adam's learning rate (0 = 0.1).
	AdamLR float64
	// Seed initialises the dummy image.
	Seed int64
}

// DRIAResult reports a reconstruction attempt.
type DRIAResult struct {
	// Reconstruction is the attacker's recovered input.
	Reconstruction *tensor.Tensor
	// ImageLoss is the Euclidean distance to the true input — the paper's
	// Figure 5 metric.
	ImageLoss float64
	// MatchLoss is the final gradient-matching objective value.
	MatchLoss float64
}

// DRIA runs the deep-leakage-from-gradients attack: the honest-but-
// curious attacker observed the victim's gradients for one (x, y) batch
// — except those of TEE-protected layers — and optimises a dummy input so
// its gradients match. Second-order gradients come analytically from the
// double-backprop autodiff engine.
//
// x is the true input (used to produce the victim gradients and to score
// ImageLoss); y is the label batch, assumed known as in the DLG setting.
func DRIA(net *nn.Network, x, y *tensor.Tensor, protectedLayers []int, cfg DRIAConfig) DRIAResult {
	if cfg.Iterations == 0 {
		cfg.Iterations = 100
	}
	if cfg.AdamLR == 0 {
		cfg.AdamLR = 0.1
	}
	protected := ProtectedSet(protectedLayers)

	// The victim's leaked gradients (deleted for protected layers).
	_, victim := net.Gradients(x, y)
	targets := make([][]*tensor.Tensor, len(victim))
	for l, gs := range victim {
		if protected[l] {
			continue
		}
		targets[l] = gs
	}

	// matchObjective evaluates ‖∇W(dummy) − g*‖² and its gradient with
	// respect to the dummy input, building a fresh double-backprop graph.
	batch := y.Shape[0]
	matchObjective := func(flat []float64) (float64, []float64) {
		dummy := tensor.FromSlice(append([]float64(nil), flat...), x.Shape...)
		f := net.BuildForward(dummy, batch)
		loss := ad.SoftmaxCrossEntropy(f.Output, y)
		var wrt []*ad.Node
		for _, vars := range f.ParamVars {
			wrt = append(wrt, vars...)
		}
		gradNodes := ad.Grad(loss, wrt)

		var match *ad.Node
		k := 0
		for l, vars := range f.ParamVars {
			for j := range vars {
				gn := gradNodes[k]
				k++
				if targets[l] == nil || gn == nil {
					continue
				}
				term := ad.SqNormDiff(gn, ad.Const(targets[l][j]))
				if match == nil {
					match = term
				} else {
					match = ad.Add(match, term)
				}
			}
		}
		if match == nil {
			// Everything protected: the objective is flat, the attacker
			// learns nothing.
			return 0, make([]float64, len(flat))
		}
		g := ad.GradValues(match, []*ad.Node{f.Input})[0]
		return ad.Scalar(match), g.Data
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	dummy0 := tensor.Randn(rng, 0.3, x.Shape...)

	var bestX []float64
	var bestF float64
	if cfg.UseAdam {
		bestX, bestF = runAdam(matchObjective, dummy0.Data, cfg.Iterations, cfg.AdamLR)
	} else {
		res := opt.LBFGS(matchObjective, dummy0.Data, opt.LBFGSConfig{
			MaxIter: cfg.Iterations, History: 10, GradTol: 1e-10,
		})
		bestX, bestF = res.X, res.F
	}

	rec := tensor.FromSlice(bestX, x.Shape...)
	return DRIAResult{
		Reconstruction: rec,
		ImageLoss:      metrics.ImageLoss(rec, x),
		MatchLoss:      bestF,
	}
}

func runAdam(obj opt.Objective, x0 []float64, iters int, lr float64) ([]float64, float64) {
	x := tensor.FromSlice(append([]float64(nil), x0...), len(x0))
	a := opt.NewAdam(lr)
	var f float64
	for i := 0; i < iters; i++ {
		var g []float64
		f, g = obj(x.Data)
		a.Step([]*tensor.Tensor{x}, []*tensor.Tensor{tensor.FromSlice(g, len(g))})
	}
	return x.Data, f
}
