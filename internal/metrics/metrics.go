// Package metrics implements the evaluation metrics the paper reports:
// AUC (the attack-model quality measure for MIA and DPIA, chosen over
// accuracy per Ling et al. 2003) and ImageLoss (the Euclidean distance
// between a DRIA reconstruction and the original input).
package metrics

import (
	"math"
	"sort"

	"github.com/gradsec/gradsec/internal/tensor"
)

// AUC computes the area under the ROC curve for binary labels and
// predicted scores (higher score = more likely positive). It handles
// tied scores exactly via the rank-sum (Mann–Whitney) formulation.
// It returns 0.5 when either class is empty.
func AUC(labels []bool, scores []float64) float64 {
	if len(labels) != len(scores) {
		panic("metrics: labels and scores length mismatch")
	}
	type pair struct {
		score float64
		pos   bool
	}
	ps := make([]pair, len(labels))
	nPos, nNeg := 0, 0
	for i, l := range labels {
		ps[i] = pair{score: scores[i], pos: l}
		if l {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].score < ps[j].score })

	// Rank-sum with average ranks for ties.
	rankSumPos := 0.0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].score == ps[i].score {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if ps[k].pos {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// ROCPoint is one point of an ROC curve.
type ROCPoint struct {
	FPR, TPR float64
}

// ROC returns the ROC curve points sorted by increasing FPR.
func ROC(labels []bool, scores []float64) []ROCPoint {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	nPos, nNeg := 0, 0
	for _, l := range labels {
		if l {
			nPos++
		} else {
			nNeg++
		}
	}
	out := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	for _, i := range idx {
		if labels[i] {
			tp++
		} else {
			fp++
		}
		out = append(out, ROCPoint{FPR: safeDiv(fp, nNeg), TPR: safeDiv(tp, nPos)})
	}
	return out
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ImageLoss is the paper's DRIA success measure: the Euclidean distance
// between the attacker's reconstruction and the true input.
func ImageLoss(reconstructed, original *tensor.Tensor) float64 {
	return math.Sqrt(tensor.SqDist(reconstructed, original))
}

// Accuracy returns the fraction of correct binary predictions at
// threshold 0.5.
func Accuracy(labels []bool, scores []float64) float64 {
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for i, l := range labels {
		if (scores[i] >= 0.5) == l {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
