package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gradsec/gradsec/internal/tensor"
)

func TestAUCPerfectClassifier(t *testing.T) {
	labels := []bool{false, false, true, true}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if got := AUC(labels, scores); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
}

func TestAUCAntiClassifier(t *testing.T) {
	labels := []bool{true, true, false, false}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if got := AUC(labels, scores); got != 0 {
		t.Fatalf("AUC = %v, want 0", got)
	}
}

func TestAUCAllTiedIsHalf(t *testing.T) {
	labels := []bool{true, false, true, false}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	if got := AUC(labels, scores); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerateClasses(t *testing.T) {
	if got := AUC([]bool{true, true}, []float64{1, 2}); got != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Fatalf("empty AUC = %v, want 0.5", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// 3 pos, 3 neg with one inversion: hand-computed AUC = 8/9.
	labels := []bool{false, false, true, false, true, true}
	scores := []float64{1, 2, 3, 4, 5, 6}
	if got := AUC(labels, scores); math.Abs(got-8.0/9) > 1e-12 {
		t.Fatalf("AUC = %v, want %v", got, 8.0/9)
	}
}

func TestAUCMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AUC([]bool{true}, []float64{1, 2})
}

// Property: AUC is invariant under strictly monotone score transforms,
// and AUC(labels, -scores) = 1 − AUC(labels, scores) (for tie-free data).
func TestAUCInvarianceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		labels := make([]bool, n)
		scores := make([]float64, n)
		perm := rng.Perm(n)
		for i := range scores {
			labels[i] = rng.Intn(2) == 0
			scores[i] = float64(perm[i]) // distinct scores, no ties
		}
		base := AUC(labels, scores)
		mono := make([]float64, n)
		neg := make([]float64, n)
		for i, s := range scores {
			mono[i] = math.Exp(s/5) + 3
			neg[i] = -s
		}
		if math.Abs(AUC(labels, mono)-base) > 1e-9 {
			return false
		}
		return math.Abs(AUC(labels, neg)-(1-base)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestROCEndpoints(t *testing.T) {
	labels := []bool{true, false, true, false}
	scores := []float64{0.9, 0.8, 0.4, 0.1}
	roc := ROC(labels, scores)
	first, last := roc[0], roc[len(roc)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Fatalf("ROC start = %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("ROC end = %+v", last)
	}
}

func TestImageLoss(t *testing.T) {
	a := tensor.FromSlice([]float64{0, 0}, 2)
	b := tensor.FromSlice([]float64{3, 4}, 2)
	if got := ImageLoss(a, b); got != 5 {
		t.Fatalf("ImageLoss = %v, want 5", got)
	}
	if got := ImageLoss(a, a); got != 0 {
		t.Fatalf("self ImageLoss = %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	labels := []bool{true, false, true}
	scores := []float64{0.9, 0.1, 0.2}
	if got := Accuracy(labels, scores); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Fatalf("MeanStd = %v, %v", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd must be 0,0")
	}
}
