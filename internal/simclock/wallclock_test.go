package simclock

import (
	"testing"
	"time"
)

func TestVirtualAdvanceFiresDueTimers(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	a := v.NewTimer(10 * time.Millisecond)
	b := v.NewTimer(30 * time.Millisecond)

	v.Advance(10 * time.Millisecond)
	select {
	case at := <-a.C:
		if !at.Equal(start.Add(10 * time.Millisecond)) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("timer a due but not fired")
	}
	select {
	case <-b.C:
		t.Fatal("timer b fired early")
	default:
	}
	if v.Waiters() != 1 {
		t.Fatalf("waiters = %d, want 1", v.Waiters())
	}

	v.Advance(20 * time.Millisecond)
	select {
	case <-b.C:
	default:
		t.Fatal("timer b due but not fired")
	}
	if v.Waiters() != 0 {
		t.Fatalf("waiters = %d, want 0", v.Waiters())
	}
}

func TestVirtualStopDisarms(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	tm := v.NewTimer(time.Second)
	tm.Stop()
	tm.Stop() // idempotent
	v.Advance(2 * time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestVirtualSetNeverGoesBackwards(t *testing.T) {
	start := time.Unix(100, 0)
	v := NewVirtual(start)
	v.Set(start.Add(-time.Minute))
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("clock went backwards to %v", got)
	}
}

func TestVirtualTieBreakIsArmingOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	first := v.NewTimer(time.Second)
	second := v.NewTimer(time.Second)
	v.Advance(time.Second)
	// Both fired; buffered channels hold the ticks regardless of order,
	// but neither may be lost.
	<-first.C
	<-second.C
}

func TestRealClockTimerFires(t *testing.T) {
	clk := Real()
	if clk.Now().IsZero() {
		t.Fatal("real clock reads zero")
	}
	tm := clk.NewTimer(time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	tm.Stop() // safe after firing
}
