// Package simclock provides a deterministic virtual clock and the
// Raspberry-Pi-3B+/OP-TEE cost model used to reproduce the paper's
// overhead experiments (Table 6, Figures 7–8).
//
// The paper's measurements are additive per protected layer (its combined
// rows are exact sums of its per-layer rows, e.g. allocation for L2+L5 =
// 0.34 s + 4.68 s = 5.02 s and TEE memory 0.565 + 0.704 = 1.269 MB), so a
// calibrated per-layer analytic model reproduces every configuration —
// including the dynamic moving-window weighted averages — while remaining
// machine-independent and deterministic. DESIGN.md §4.3 details the
// calibration fit.
package simclock

import (
	"fmt"
	"math"
	"time"
)

// Clock accumulates simulated time in the three buckets the paper
// reports: user time (normal-world compute), kernel time (secure-world
// compute) and TEE memory allocation time.
type Clock struct {
	user, kernel, alloc time.Duration
}

// ChargeUser adds normal-world compute time.
func (c *Clock) ChargeUser(d time.Duration) { c.user += d }

// ChargeKernel adds secure-world compute time.
func (c *Clock) ChargeKernel(d time.Duration) { c.kernel += d }

// ChargeAlloc adds TEE memory allocation time.
func (c *Clock) ChargeAlloc(d time.Duration) { c.alloc += d }

// User returns accumulated normal-world time.
func (c *Clock) User() time.Duration { return c.user }

// Kernel returns accumulated secure-world time.
func (c *Clock) Kernel() time.Duration { return c.kernel }

// Alloc returns accumulated allocation time.
func (c *Clock) Alloc() time.Duration { return c.alloc }

// Total returns the sum of all buckets.
func (c *Clock) Total() time.Duration { return c.user + c.kernel + c.alloc }

// Reset zeroes all buckets.
func (c *Clock) Reset() { c.user, c.kernel, c.alloc = 0, 0, 0 }

// Snapshot returns the current bucket values.
func (c *Clock) Snapshot() Breakdown {
	return Breakdown{User: c.user, Kernel: c.kernel, Alloc: c.alloc}
}

// Breakdown is an immutable copy of a Clock's buckets.
type Breakdown struct {
	User, Kernel, Alloc time.Duration
}

// Total returns the sum of the breakdown's buckets.
func (b Breakdown) Total() time.Duration { return b.User + b.Kernel + b.Alloc }

// Add returns the bucketwise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{User: b.User + o.User, Kernel: b.Kernel + o.Kernel, Alloc: b.Alloc + o.Alloc}
}

// Scale returns the breakdown scaled by f (used for the paper's
// VMW-weighted averages).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		User:   time.Duration(float64(b.User) * f),
		Kernel: time.Duration(float64(b.Kernel) * f),
		Alloc:  time.Duration(float64(b.Alloc) * f),
	}
}

func (b Breakdown) String() string {
	return fmt.Sprintf("user %.3fs + kernel %.3fs + alloc %.3fs", b.User.Seconds(), b.Kernel.Seconds(), b.Alloc.Seconds())
}

// CostModel parameterises the simulated device.
type CostModel struct {
	// MACNanos is normal-world time per multiply-accumulate, in
	// nanoseconds (fractional: the calibrated Pi value is 2.35 ns).
	MACNanos float64
	// BackwardFactor scales forward MACs to forward+backward cost
	// (backward recomputes roughly twice the forward work).
	BackwardFactor float64
	// SecureFactor is the slowdown of secure-world compute relative to
	// the normal world.
	SecureFactor float64
	// WorldSwitch is the cost of one SMC world transition.
	WorldSwitch time.Duration
	// AllocCoeff/AllocExp model TEE weight-allocation + trusted-I/O-path
	// transfer time as alloc(P) = AllocCoeff · P^AllocExp for P scalar
	// parameters.
	AllocCoeff time.Duration
	// AllocExp is the (sub-linear) allocation exponent.
	AllocExp float64
	// CycleUserOverhead is fixed per-cycle normal-world overhead outside
	// the layers (data loading, bookkeeping).
	CycleUserOverhead time.Duration
	// CycleKernelOverhead is fixed per-cycle secure-world overhead (the
	// paper's 0.021 s baseline kernel time).
	CycleKernelOverhead time.Duration
	// BytesPerCell is the storage size of one tensor cell for TEE memory
	// accounting. The paper's Darknet substrate uses float32, hence 4.
	BytesPerCell int
}

// Pi3B returns the cost model calibrated against the paper's Table 6
// (Raspberry Pi 3B+, ARM Cortex-A53 @1.4 GHz, OP-TEE; LeNet-5, CIFAR-100,
// batch size 32). Fit summary (DESIGN.md §4.3):
//
//   - the summed per-layer user-time shares of Table 6 (1.966 s over
//     3·32·I·998400 MACs with I = 10 local iterations per cycle) give
//     ≈2.05 ns/MAC — per-layer shares then deviate from the paper's
//     (which are not uniform per MAC: its L1 runs anomalously fast), but
//     the baseline and every multi-layer configuration track closely;
//   - secure slowdown κ ≈ 1.25 from the kernel/user deltas of L2–L4;
//   - alloc(P) = 3.05e-4 s · P^0.857 fitted through the paper's
//     (3.6 K params → 0.34 s) and (76.9 K params → 4.68 s) points;
//   - residual per-cycle user time 0.225 s and kernel time 0.021 s.
func Pi3B() CostModel {
	return CostModel{
		MACNanos:            2.05,
		BackwardFactor:      3.0,
		SecureFactor:        1.25,
		WorldSwitch:         300 * time.Microsecond,
		AllocCoeff:          time.Duration(3.05e-4 * float64(time.Second)),
		AllocExp:            0.857,
		CycleUserOverhead:   225 * time.Millisecond,
		CycleKernelOverhead: 21 * time.Millisecond,
		BytesPerCell:        4,
	}
}

// LayerCompute returns the normal-world time to execute macs
// multiply-accumulates of forward pass work, including the backward
// factor when backward is true.
func (m CostModel) LayerCompute(macs int64, backward bool) time.Duration {
	f := 1.0
	if backward {
		f = m.BackwardFactor
	}
	return time.Duration(float64(macs) * f * m.MACNanos * float64(time.Nanosecond))
}

// SecureCompute converts a normal-world compute duration to its
// secure-world equivalent.
func (m CostModel) SecureCompute(d time.Duration) time.Duration {
	return time.Duration(float64(d) * m.SecureFactor)
}

// AllocTime returns the simulated time to allocate and provision TEE
// memory for params scalar parameters.
func (m CostModel) AllocTime(params int) time.Duration {
	if params <= 0 {
		return 0
	}
	return time.Duration(float64(m.AllocCoeff) * math.Pow(float64(params), m.AllocExp))
}
