package simclock

import (
	"sort"
	"sync"
	"time"
)

// WallClock abstracts the passage of wall time for components that wait
// on deadlines (the FL round engine). Production code injects Real();
// tests and the flsim harness inject a Virtual clock so deadline
// behaviour is deterministic — core logic never calls time.Now or
// time.After directly.
type WallClock interface {
	// Now returns the current wall time.
	Now() time.Time
	// NewTimer arms a timer that delivers one tick on C after d. Stop
	// disarms it; a stopped timer never fires.
	NewTimer(d time.Duration) *Timer
}

// Timer is a WallClock timer. C carries at most one tick.
type Timer struct {
	// C delivers the firing time.
	C <-chan time.Time

	stop func()
}

// Stop disarms the timer. It is safe to call after firing or twice.
func (t *Timer) Stop() {
	if t.stop != nil {
		t.stop()
	}
}

// realClock delegates to the runtime clock.
type realClock struct{}

// Real returns the process wall clock.
func Real() WallClock { return realClock{} }

// Now implements WallClock.
func (realClock) Now() time.Time { return time.Now() }

// NewTimer implements WallClock.
func (realClock) NewTimer(d time.Duration) *Timer {
	rt := time.NewTimer(d)
	return &Timer{C: rt.C, stop: func() { rt.Stop() }}
}

// Virtual is a manually advanced WallClock. Time only moves when Advance
// (or Set) is called; due timers fire in timestamp order during the
// call. All methods are safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers []*virtualTimer
	seq    int
}

type virtualTimer struct {
	at      time.Time
	seq     int // arming order breaks timestamp ties deterministically
	ch      chan time.Time
	stopped bool
}

// NewVirtual creates a virtual clock reading start.
func NewVirtual(start time.Time) *Virtual { return &Virtual{now: start} }

// Now implements WallClock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// NewTimer implements WallClock. A timer armed with d <= 0 fires on the
// next Advance (or immediately on Advance(0)).
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	vt := &virtualTimer{at: v.now.Add(d), seq: v.seq, ch: make(chan time.Time, 1)}
	v.seq++
	v.timers = append(v.timers, vt)
	return &Timer{C: vt.ch, stop: func() { v.stopTimer(vt) }}
}

func (v *Virtual) stopTimer(vt *virtualTimer) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vt.stopped = true
	for i, t := range v.timers {
		if t == vt {
			v.timers = append(v.timers[:i], v.timers[i+1:]...)
			break
		}
	}
}

// Advance moves the clock forward by d, firing every due timer in
// timestamp order (arming order breaks ties).
func (v *Virtual) Advance(d time.Duration) { v.Set(v.Now().Add(d)) }

// Set jumps the clock to t (never backwards), firing due timers.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	var due []*virtualTimer
	var rest []*virtualTimer
	for _, vt := range v.timers {
		if !vt.at.After(v.now) {
			due = append(due, vt)
		} else {
			rest = append(rest, vt)
		}
	}
	v.timers = rest
	sort.Slice(due, func(i, j int) bool {
		if !due[i].at.Equal(due[j].at) {
			return due[i].at.Before(due[j].at)
		}
		return due[i].seq < due[j].seq
	})
	now := v.now
	v.mu.Unlock()
	for _, vt := range due {
		vt.ch <- now // capacity 1, only ever one send
	}
}

// Waiters returns the number of armed, unfired timers — tests use it to
// know a component has reached its deadline wait.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// NextAt returns the earliest armed timer's fire time. Harnesses that
// drive event-at-a-time simulations (the flsim async lockstep) pair it
// with Set to advance exactly to the next scheduled event. ok is false
// when no timer is armed.
func (v *Virtual) NextAt() (at time.Time, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, vt := range v.timers {
		if !ok || vt.at.Before(at) {
			at, ok = vt.at, true
		}
	}
	return at, ok
}
