package simclock

import (
	"math"
	"testing"
	"time"
)

func TestClockAccumulation(t *testing.T) {
	var c Clock
	c.ChargeUser(2 * time.Second)
	c.ChargeKernel(time.Second)
	c.ChargeAlloc(500 * time.Millisecond)
	if c.User() != 2*time.Second || c.Kernel() != time.Second || c.Alloc() != 500*time.Millisecond {
		t.Fatalf("buckets = %v/%v/%v", c.User(), c.Kernel(), c.Alloc())
	}
	if c.Total() != 3500*time.Millisecond {
		t.Fatalf("Total = %v", c.Total())
	}
	snap := c.Snapshot()
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("Total after reset = %v", c.Total())
	}
	if snap.Total() != 3500*time.Millisecond {
		t.Fatalf("snapshot total = %v", snap.Total())
	}
}

func TestBreakdownAddScaleString(t *testing.T) {
	a := Breakdown{User: time.Second, Kernel: 2 * time.Second, Alloc: 3 * time.Second}
	b := a.Add(a)
	if b.User != 2*time.Second || b.Kernel != 4*time.Second || b.Alloc != 6*time.Second {
		t.Fatalf("Add = %+v", b)
	}
	h := a.Scale(0.5)
	if h.User != 500*time.Millisecond {
		t.Fatalf("Scale = %+v", h)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

// The calibration anchors from the paper's Table 6 (DESIGN.md §4.3):
// alloc(3.6K params) ≈ 0.34 s, alloc(76.9K params) ≈ 4.68 s.
func TestPi3BAllocCalibration(t *testing.T) {
	m := Pi3B()
	cases := []struct {
		params int
		want   float64 // seconds
		tol    float64
	}{
		{3612, 0.34, 0.05},  // LeNet-5 L2–L4 (3600 weights + 12 biases)
		{76900, 4.68, 0.35}, // LeNet-5 L5
		{912, 0.09, 0.05},   // LeNet-5 L1 (predicted 0.104 in the fit)
	}
	for _, tc := range cases {
		got := m.AllocTime(tc.params).Seconds()
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("AllocTime(%d) = %.3fs, want %.2f±%.2f", tc.params, got, tc.want, tc.tol)
		}
	}
	if m.AllocTime(0) != 0 || m.AllocTime(-5) != 0 {
		t.Fatal("AllocTime of non-positive params must be 0")
	}
}

// The summed per-layer user time of LeNet-5 (998400 MACs × batch 32 ×
// 10 iters, forward+backward) must land near the paper's 1.966 s; with
// the 0.225 s residual that reproduces the 2.191 s baseline user time.
func TestPi3BLayerComputeCalibration(t *testing.T) {
	m := Pi3B()
	macs := int64(998400) * 32 * 10
	got := m.LayerCompute(macs, true).Seconds()
	if math.Abs(got-1.966) > 0.05 {
		t.Fatalf("summed user share = %.3fs, want ≈1.966s", got)
	}
	fwd := m.LayerCompute(macs, false)
	if fwd >= m.LayerCompute(macs, true) {
		t.Fatal("forward-only must cost less than forward+backward")
	}
}

func TestSecureComputeFactor(t *testing.T) {
	m := Pi3B()
	d := m.SecureCompute(time.Second)
	if d != 1250*time.Millisecond {
		t.Fatalf("SecureCompute = %v", d)
	}
}

func TestAllocMonotone(t *testing.T) {
	m := Pi3B()
	prev := time.Duration(0)
	for _, p := range []int{1, 10, 100, 1000, 10000, 100000} {
		d := m.AllocTime(p)
		if d <= prev {
			t.Fatalf("AllocTime not monotone at %d params", p)
		}
		prev = d
	}
}
