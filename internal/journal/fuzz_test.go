package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

// seedJournal builds valid journal bytes in memory for the corpus.
func seedJournal(recs []*Record) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	for _, rec := range recs {
		payload := encodeRecord(rec)
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		buf.Write(hdr[:])
		buf.Write(payload)
	}
	return buf.Bytes()
}

// FuzzJournalReplay feeds hostile bytes to the journal decoder: it
// must never panic, never over-allocate past the frame budget, and
// Commit must produce a self-consistent state from whatever records
// survive decoding. Recovery code runs on exactly the bytes a crashed
// (or malicious) process left behind, so this is a trust boundary.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(magic[:])
	f.Add(seedJournal(nil))
	f.Add(seedJournal([]*Record{
		{Type: RecSession, Flags: FlagSecAgg | FlagPartials, Seed: -3, Rounds: 7, Scale: 24, Floor: 1},
		{Type: RecRoster, Device: "edge-0", Codec: 2, Cap: 2, HasTEE: true, MaskPub: []byte{1, 2, 3, 4}},
		{Type: RecFloor, Floor: 5},
		{Type: RecRoundOpen, Round: 0},
		{Type: RecFold, Round: 0, Device: "edge-0"},
		{Type: RecProbation, Device: "edge-0", Until: 4},
		{Type: RecRoundClose, Round: 0, OK: true,
			Stats:  Stats{Round: 0, Sampled: 1, Responded: 1, WeightTotal: 1, UpdateNorm: 2},
			Update: []*tensor.Tensor{tensor.Full(0.5, 3, 3), tensor.Full(-0.25, 3)}},
		{Type: RecRoundOpen, Round: 1},
		{Type: RecQuarantine, Device: "edge-0"},
	}))
	f.Add(seedJournal([]*Record{
		{Type: RecSession, Flags: FlagAsync},
		{Type: RecWatermark, Round: 0, OK: true, Update: []*tensor.Tensor{tensor.Full(1, 2)}},
	}))
	// A deliberately corrupt trailer on a valid prefix.
	corrupt := seedJournal([]*Record{{Type: RecQuarantine, Device: "x"}})
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Decode(data)
		if err != nil {
			if len(recs) != 0 {
				t.Fatalf("records returned alongside error %v", err)
			}
			return
		}
		st := Commit(recs)
		// Whatever survived must be internally consistent.
		if st.NextRound < 0 || st.Draws < 0 || st.Draws > len(st.Closes) {
			t.Fatalf("inconsistent state: next=%d draws=%d closes=%d", st.NextRound, st.Draws, len(st.Closes))
		}
		for _, c := range st.Closes {
			if c.Type != RecRoundClose && c.Type != RecWatermark {
				t.Fatalf("non-close record in Closes: %v", c.Type)
			}
			for _, u := range c.Update {
				if u == nil {
					t.Fatal("nil tensor in committed update")
				}
			}
		}
		for _, r := range st.Roster {
			if r.Type != RecRoster {
				t.Fatalf("non-roster record in Roster: %v", r.Type)
			}
		}
		// Decoded records must re-encode and decode to the same type
		// sequence (round-trip stability on survivors).
		re, err := Decode(seedJournal(recs))
		if err != nil || len(re) != len(recs) {
			t.Fatalf("re-encode round trip: %d/%d records, err %v", len(re), len(recs), err)
		}
		for i := range recs {
			if re[i].Type != recs[i].Type {
				t.Fatalf("record %d type changed on round trip", i)
			}
		}
	})
}
