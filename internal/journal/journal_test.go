package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

func testRecords() []*Record {
	return []*Record{
		{Type: RecSession, Flags: FlagSecAgg, Seed: 42, Rounds: 5, Scale: 24, Floor: 2},
		{Type: RecRoster, Device: "d0", Codec: 1, Cap: 2, HasTEE: true, MaskPub: []byte{9, 8, 7}},
		{Type: RecRoster, Device: "d1"},
		{Type: RecFloor, Floor: 3},
		{Type: RecRoundOpen, Round: 0},
		{Type: RecFold, Round: 0, Device: "d0"},
		{Type: RecProbation, Device: "d1", Until: 3},
		{Type: RecRoundClose, Round: 0, OK: true,
			Stats:  Stats{Round: 0, Sampled: 2, Responded: 1, Probation: 1, WeightTotal: 1, UpdateNorm: 0.5},
			Update: []*tensor.Tensor{tensor.Full(0.25, 2, 2)}},
		{Type: RecRoundOpen, Round: 1},
		{Type: RecQuarantine, Device: "d1"},
		{Type: RecRoundClose, Round: 1, OK: false, Stats: Stats{Round: 1, Sampled: 1}},
	}
}

func writeJournal(t *testing.T, recs []*Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.journal")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	want := testRecords()
	got, err := Replay(writeJournal(t, want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Type != w.Type || g.Round != w.Round || g.Device != w.Device ||
			g.Codec != w.Codec || g.Cap != w.Cap || g.HasTEE != w.HasTEE ||
			g.Flags != w.Flags || g.Seed != w.Seed || g.Rounds != w.Rounds ||
			g.Scale != w.Scale || g.Floor != w.Floor || g.Until != w.Until ||
			g.OK != w.OK || g.Stats != w.Stats {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		if !bytes.Equal(g.MaskPub, w.MaskPub) {
			t.Errorf("record %d MaskPub = %v, want %v", i, g.MaskPub, w.MaskPub)
		}
		if (g.Update == nil) != (w.Update == nil) {
			t.Fatalf("record %d update presence mismatch", i)
		}
		for k := range w.Update {
			if !g.Update[k].SameShape(w.Update[k]) {
				t.Fatalf("record %d update tensor %d shape mismatch", i, k)
			}
			for n, v := range w.Update[k].Data {
				if g.Update[k].Data[n] != v {
					t.Fatalf("record %d tensor %d datum %d = %v, want %v", i, k, n, g.Update[k].Data[n], v)
				}
			}
		}
	}
}

// A crash tears at most the trailing record; replay must return every
// record before the tear, for every possible truncation point.
func TestTornTail(t *testing.T) {
	path := writeJournal(t, testRecords())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for cut := magicLen; cut < len(data); cut++ {
		recs, err := Decode(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) >= len(full) {
			t.Fatalf("cut %d: torn journal replayed %d records, want < %d", cut, len(recs), len(full))
		}
		// Records before the tear decode identically.
		for i, rec := range recs {
			if rec.Type != full[i].Type || rec.Round != full[i].Round || rec.Device != full[i].Device {
				t.Fatalf("cut %d: record %d diverged", cut, i)
			}
		}
	}
}

func TestCorruptTailStopsCleanly(t *testing.T) {
	path := writeJournal(t, testRecords())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the last record's payload: checksum mismatch.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0x40
	recs, err := Decode(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(testRecords())-1 {
		t.Fatalf("corrupt tail replayed %d records, want %d", len(recs), len(testRecords())-1)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Decode([]byte("not a journal at all")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode(nil); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestAppendReopen(t *testing.T) {
	recs := testRecords()
	path := writeJournal(t, recs[:4])
	j, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[4:] {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records after reopen, want %d", len(got), len(recs))
	}
}

func TestAppendRejectsNonJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus")
	if err := os.WriteFile(path, []byte("bogus bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(path); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

// Commit implements the write-ahead discipline: in-flight rounds are
// discarded, closed rounds commit their buffered transitions, failed
// closes burn a draw, watermarks do not.
func TestCommit(t *testing.T) {
	recs := testRecords()
	// Add an in-flight round: opened, quarantined a device, never closed.
	recs = append(recs,
		&Record{Type: RecRoundOpen, Round: 2},
		&Record{Type: RecQuarantine, Device: "d0"},
		&Record{Type: RecFold, Round: 2, Device: "d0"},
	)
	st := Commit(recs)
	if st.Session == nil || st.Session.Seed != 42 {
		t.Fatalf("session fingerprint not recovered: %+v", st.Session)
	}
	if len(st.Roster) != 2 || st.Roster[0].Device != "d0" || st.Roster[1].Device != "d1" {
		t.Fatalf("roster = %+v", st.Roster)
	}
	if st.Floor != 3 {
		t.Fatalf("floor = %d, want 3", st.Floor)
	}
	// d1: probation committed by round 0's close, quarantine by round 1's.
	if st.Probation["d1"] != 3 {
		t.Fatalf("probation[d1] = %d, want 3", st.Probation["d1"])
	}
	if !st.Quarantined["d1"] {
		t.Fatal("d1 quarantine (committed by round 1 close) lost")
	}
	// d0's quarantine belongs to the in-flight round 2 — discarded.
	if st.Quarantined["d0"] {
		t.Fatal("in-flight round 2 quarantine of d0 must be discarded")
	}
	if st.NextRound != 2 {
		t.Fatalf("next round = %d, want 2", st.NextRound)
	}
	if st.Draws != 2 {
		t.Fatalf("draws = %d, want 2 (both closes were synchronous)", st.Draws)
	}
	if len(st.Closes) != 2 || !st.Closes[0].OK || st.Closes[1].OK {
		t.Fatalf("closes = %+v", st.Closes)
	}
}

func TestCommitWatermarksBurnNoDraws(t *testing.T) {
	st := Commit([]*Record{
		{Type: RecSession, Flags: FlagAsync},
		{Type: RecRoundOpen, Round: 0},
		{Type: RecWatermark, Round: 0, OK: true, Update: []*tensor.Tensor{tensor.Full(1, 2)}},
		{Type: RecRoundOpen, Round: 1},
		{Type: RecWatermark, Round: 1, OK: true, Update: []*tensor.Tensor{tensor.Full(1, 2)}},
	})
	if st.Draws != 0 {
		t.Fatalf("draws = %d, want 0 for watermarks", st.Draws)
	}
	if st.NextRound != 2 || len(st.Closes) != 2 {
		t.Fatalf("next=%d closes=%d", st.NextRound, len(st.Closes))
	}
}

func TestCommitDiscardsAbandonedOpen(t *testing.T) {
	// Round 0 opens, never closes (pre-sample failure), round 1 opens
	// and closes: round 0's buffered transition must vanish and round
	// 1's must commit.
	st := Commit([]*Record{
		{Type: RecRoundOpen, Round: 0},
		{Type: RecProbation, Device: "a", Until: 9},
		{Type: RecRoundOpen, Round: 1},
		{Type: RecProbation, Device: "b", Until: 7},
		{Type: RecRoundClose, Round: 1, OK: true},
	})
	if _, ok := st.Probation["a"]; ok {
		t.Fatal("abandoned round 0 probation must be discarded")
	}
	if st.Probation["b"] != 7 {
		t.Fatalf("probation[b] = %d, want 7", st.Probation["b"])
	}
	if st.Draws != 1 {
		t.Fatalf("draws = %d, want 1", st.Draws)
	}
}

func TestStickyAppendError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j.f.Close() // sabotage the fd; next append must fail and stick
	if err := j.Append(&Record{Type: RecFloor, Floor: 1}); err == nil {
		t.Fatal("append on closed fd succeeded")
	}
	if j.Err() == nil {
		t.Fatal("append error did not stick")
	}
}
