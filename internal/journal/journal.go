// Package journal is the crash-durability layer of the federation
// engine: an append-only, length-prefixed, checksummed record log of
// everything a server must remember to resume a session after a crash
// — roster admissions, quarantine/probation transitions, the secure-
// aggregation release floor, round open/fold/close events and async
// version watermarks.
//
// The format is deliberately dumb. Each record is
//
//	uint32 BE payload length | uint32 BE CRC-32 (IEEE) of payload | payload
//
// and the payload is a record-type byte followed by wire-encoded
// fields. The file opens with an 8-byte magic. Appends are a single
// write(2) each, so a crash tears at most the trailing record; Replay
// stops cleanly at the first torn or corrupt record and returns
// everything before it. Nothing in the file is trusted: Decode is
// fuzzed against hostile bytes and must never panic or over-allocate.
//
// Round records follow a write-ahead discipline. RecRoundOpen marks a
// round in flight; the records between it and the matching
// RecRoundClose (quarantines, probations, folds) are only *committed*
// by the close. A replayer therefore buffers per-round records and
// discards an open round that never closed — that round crashed mid-
// flight and will simply be re-run by the recovered process. Failed
// rounds DO close (with OK=false): they consumed a sampling draw and
// left a trace entry, and replay must reproduce both.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
	"time"

	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// RecType discriminates journal records.
type RecType uint8

const (
	// RecSession opens a journal: a fingerprint of the session
	// configuration (mode flags, sampling seed, planned rounds,
	// release floor). Recover refuses a journal whose fingerprint
	// disagrees with the config it was handed — replaying a masked
	// session into a plaintext server would corrupt state silently.
	RecSession RecType = 1
	// RecRoster admits one device. Roster records are written in
	// selection order and the order is load-bearing: cohort sampling
	// permutes roster indices, so a recovered server must rebuild the
	// roster in exactly this order for its draws to line up.
	RecRoster RecType = 2
	// RecFloor raises the secure-aggregation release floor
	// (MinRelease). Floors are monotonic, matching the enclave.
	RecFloor RecType = 3
	// RecQuarantine permanently excludes a device.
	RecQuarantine RecType = 4
	// RecProbation benches a device until the given round.
	RecProbation RecType = 5
	// RecRoundOpen marks a synchronous round in flight.
	RecRoundOpen RecType = 6
	// RecFold records one update folded into the open round. Folds
	// carry no tensor data — they exist so an operator (or test) can
	// see how far a crashed round got.
	RecFold RecType = 7
	// RecRoundClose commits the open round: its stats, whether it
	// succeeded, and — for rounds that applied an aggregate — the
	// applied mean update, so replay reproduces the model
	// bit-identically without re-running training.
	RecRoundClose RecType = 8
	// RecWatermark commits an asynchronous model version (the
	// goal-updates buffer was applied). Like RecRoundClose it carries
	// stats and the applied update, but asynchronous sessions never
	// sample, so watermarks burn no RNG draws on replay.
	RecWatermark RecType = 9

	recMax = RecWatermark
)

func (t RecType) String() string {
	switch t {
	case RecSession:
		return "session"
	case RecRoster:
		return "roster"
	case RecFloor:
		return "floor"
	case RecQuarantine:
		return "quarantine"
	case RecProbation:
		return "probation"
	case RecRoundOpen:
		return "round-open"
	case RecFold:
		return "fold"
	case RecRoundClose:
		return "round-close"
	case RecWatermark:
		return "watermark"
	}
	return fmt.Sprintf("rectype(%d)", uint8(t))
}

// Session flag bits (RecSession.Flags).
const (
	FlagSecAgg uint64 = 1 << iota
	FlagPartials
	FlagAsync
	FlagRequireTEE
)

// Stats mirrors fl.RoundStats field-for-field. The journal cannot
// import internal/fl (fl writes through the journal), so the engine
// converts at the boundary.
type Stats struct {
	Round         int
	Sampled       int
	Responded     int
	Dropped       int
	Quarantined   int
	Probation     int
	LateDiscarded int
	Duplicates    int
	Reconciled    int
	WeightTotal   float64
	UpdateNorm    float64
	Shards        int
}

// Record is one journal entry. Which fields are meaningful depends on
// Type; unused fields are zero.
type Record struct {
	Type RecType

	// Round: the round (or async version) index for RecRoundOpen,
	// RecFold, RecRoundClose and RecWatermark.
	Round int

	// Device: the subject of RecRoster, RecQuarantine, RecProbation
	// and RecFold records.
	Device string

	// Roster fields (RecRoster).
	Codec   uint8
	Cap     uint8
	HasTEE  bool
	MaskPub []byte

	// Session fingerprint (RecSession).
	Flags  uint64
	Seed   int64
	Rounds int
	Scale  int

	// Floor (RecSession, RecFloor).
	Floor int

	// Until: first eligible round again (RecProbation).
	Until int

	// Close fields (RecRoundClose, RecWatermark).
	OK     bool
	Stats  Stats
	Update []*tensor.Tensor
}

const magicLen = 8

var magic = [magicLen]byte{'G', 'S', 'J', 'R', 'N', 'L', '1', '\n'}

// maxRecord bounds a single record payload. Reuses the wire frame
// budget: a close record carries at most one model update.
const maxRecord = wire.MaxFrame

// ErrBadMagic reports a file that is not a GradSec journal at all (as
// opposed to a journal with a torn tail, which replays cleanly).
var ErrBadMagic = errors.New("journal: bad magic")

// Journal is an append-only record log backed by one file. Methods are
// not safe for concurrent use; the engine appends from its round
// goroutine only. (Pending is the one exception: it is atomic so an
// admin /healthz goroutine can read the journal lag live.)
type Journal struct {
	f   *os.File
	err error

	// pending counts records appended since the last successful Sync —
	// the durability exposure if the process dies right now.
	pending atomic.Int64

	// appendNS/syncNS, when instrumented, receive per-call I/O latency
	// in nanoseconds. These time real file I/O, so they use the real
	// clock regardless of any simulated session clock.
	appendNS *obs.Histogram
	syncNS   *obs.Histogram
}

// Instrument attaches latency histograms to Append and Sync. Pass nil
// to detach. Call before the journal is handed to the engine.
func (j *Journal) Instrument(appendNS, syncNS *obs.Histogram) {
	j.appendNS = appendNS
	j.syncNS = syncNS
}

// Pending returns the number of records appended since the last
// successful Sync. Safe to call from any goroutine.
func (j *Journal) Pending() int64 {
	if j == nil {
		return 0
	}
	return j.pending.Load()
}

// Create creates (or truncates) a journal file and writes the magic.
func Create(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: writing magic: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append reopens an existing journal for appending (a recovered
// process continues its predecessor's log). The magic is validated; a
// torn trailing record is left in place — Replay tolerates it and a
// subsequent recovery will simply discard it again.
func Append(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: append: %w", err)
	}
	var m [magicLen]byte
	rf, err := os.Open(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: append: %w", err)
	}
	_, rerr := io.ReadFull(rf, m[:])
	rf.Close()
	if rerr != nil || m != magic {
		f.Close()
		return nil, ErrBadMagic
	}
	return &Journal{f: f}, nil
}

// Err returns the first append error, if any. The engine treats the
// journal as best-effort durability: appends never fail a round, but a
// harness (or operator) should check Err before trusting the log.
func (j *Journal) Err() error { return j.err }

// Append encodes and writes one record. The header and payload go out
// in a single Write so a crash cannot interleave records. The first
// failed write sticks: later appends become no-ops reporting it.
func (j *Journal) Append(rec *Record) error {
	if j.err != nil {
		return j.err
	}
	payload := encodeRecord(rec)
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	var start time.Time
	if j.appendNS != nil {
		start = time.Now()
	}
	if _, err := j.f.Write(buf); err != nil {
		j.err = fmt.Errorf("journal: append: %w", err)
		return j.err
	}
	if j.appendNS != nil {
		j.appendNS.Observe(time.Since(start).Nanoseconds())
	}
	j.pending.Add(1)
	return nil
}

// Sync flushes the log to stable storage.
func (j *Journal) Sync() error {
	if j.err != nil {
		return j.err
	}
	var start time.Time
	if j.syncNS != nil {
		start = time.Now()
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: sync: %w", err)
		return j.err
	}
	if j.syncNS != nil {
		j.syncNS.Observe(time.Since(start).Nanoseconds())
	}
	j.pending.Store(0)
	return nil
}

// Close syncs and closes the file. Safe to call twice.
func (j *Journal) Close() error {
	if j.f == nil {
		return j.err
	}
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	if j.err == nil {
		if serr != nil {
			j.err = serr
		} else if cerr != nil {
			j.err = cerr
		}
	}
	return j.err
}

// encodeRecord serialises a record payload (type byte + fields).
// Tensors always travel uncompressed f64 — a journal is a durability
// artefact, not a bandwidth-constrained link, and replay must be
// bit-exact.
func encodeRecord(rec *Record) []byte {
	w := wire.NewWriter()
	w.Codec = wire.CodecF64
	w.Uvarint(uint64(rec.Type))
	switch rec.Type {
	case RecSession:
		w.Uvarint(rec.Flags)
		w.Uvarint(uint64(rec.Seed))
		w.Uvarint(uint64(rec.Rounds))
		w.Uvarint(uint64(rec.Scale))
		w.Uvarint(uint64(rec.Floor))
	case RecRoster:
		w.String(rec.Device)
		w.Uvarint(uint64(rec.Codec))
		w.Uvarint(uint64(rec.Cap))
		w.Bool(rec.HasTEE)
		w.Blob(rec.MaskPub)
	case RecFloor:
		w.Uvarint(uint64(rec.Floor))
	case RecQuarantine:
		w.String(rec.Device)
	case RecProbation:
		w.String(rec.Device)
		w.Uvarint(uint64(rec.Until))
	case RecRoundOpen:
		w.Uvarint(uint64(rec.Round))
	case RecFold:
		w.Uvarint(uint64(rec.Round))
		w.String(rec.Device)
	case RecRoundClose, RecWatermark:
		w.Uvarint(uint64(rec.Round))
		w.Bool(rec.OK)
		encodeStats(w, &rec.Stats)
		w.Bool(rec.Update != nil)
		if rec.Update != nil {
			w.TensorList(rec.Update)
		}
	}
	return w.Detach()
}

func encodeStats(w *wire.Writer, st *Stats) {
	w.Uvarint(uint64(st.Round))
	w.Uvarint(uint64(st.Sampled))
	w.Uvarint(uint64(st.Responded))
	w.Uvarint(uint64(st.Dropped))
	w.Uvarint(uint64(st.Quarantined))
	w.Uvarint(uint64(st.Probation))
	w.Uvarint(uint64(st.LateDiscarded))
	w.Uvarint(uint64(st.Duplicates))
	w.Uvarint(uint64(st.Reconciled))
	w.Float64(st.WeightTotal)
	w.Float64(st.UpdateNorm)
	w.Uvarint(uint64(st.Shards))
}

// decodeRecord parses one payload. Returns an error on any malformed
// field — the caller treats that as a torn tail.
func decodeRecord(payload []byte) (*Record, error) {
	r := wire.NewReader(payload)
	r.Codec = wire.CodecF64
	t := r.Uvarint()
	if r.Err() != nil || t == 0 || t > uint64(recMax) {
		return nil, fmt.Errorf("journal: bad record type %d", t)
	}
	rec := &Record{Type: RecType(t)}
	switch rec.Type {
	case RecSession:
		rec.Flags = r.Uvarint()
		rec.Seed = int64(r.Uvarint())
		rec.Rounds = asInt(r.Uvarint())
		rec.Scale = asInt(r.Uvarint())
		rec.Floor = asInt(r.Uvarint())
	case RecRoster:
		rec.Device = r.String()
		rec.Codec = uint8(r.Uvarint())
		rec.Cap = uint8(r.Uvarint())
		rec.HasTEE = r.Bool()
		rec.MaskPub = r.Blob()
	case RecFloor:
		rec.Floor = asInt(r.Uvarint())
	case RecQuarantine:
		rec.Device = r.String()
	case RecProbation:
		rec.Device = r.String()
		rec.Until = asInt(r.Uvarint())
	case RecRoundOpen:
		rec.Round = asInt(r.Uvarint())
	case RecFold:
		rec.Round = asInt(r.Uvarint())
		rec.Device = r.String()
	case RecRoundClose, RecWatermark:
		rec.Round = asInt(r.Uvarint())
		rec.OK = r.Bool()
		decodeStats(r, &rec.Stats)
		if r.Bool() {
			rec.Update = r.TensorList()
			if r.Err() == nil && rec.Update == nil {
				return nil, errors.New("journal: close record with empty update list")
			}
		}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("journal: decoding %s record: %w", rec.Type, r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("journal: %d trailing bytes in %s record", r.Remaining(), rec.Type)
	}
	return rec, nil
}

func decodeStats(r *wire.Reader, st *Stats) {
	st.Round = asInt(r.Uvarint())
	st.Sampled = asInt(r.Uvarint())
	st.Responded = asInt(r.Uvarint())
	st.Dropped = asInt(r.Uvarint())
	st.Quarantined = asInt(r.Uvarint())
	st.Probation = asInt(r.Uvarint())
	st.LateDiscarded = asInt(r.Uvarint())
	st.Duplicates = asInt(r.Uvarint())
	st.Reconciled = asInt(r.Uvarint())
	st.WeightTotal = r.Float64()
	st.UpdateNorm = r.Float64()
	st.Shards = asInt(r.Uvarint())
}

// asInt narrows a journal varint to int, saturating rather than
// wrapping on hostile 64-bit values (fuzzed inputs).
func asInt(v uint64) int {
	const maxInt = int(^uint(0) >> 1)
	if v > uint64(maxInt) {
		return maxInt
	}
	return int(v)
}

// Replay reads a journal file and returns its committed records in
// order. See Decode for the commit/torn-tail semantics.
func Replay(path string) ([]*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: replay: %w", err)
	}
	return Decode(data)
}

// Decode parses journal bytes. The trailing record may be torn by a
// crash (short header, truncated payload, checksum mismatch, or a
// partially-encoded payload); decoding stops cleanly there and
// returns the records before it. A missing or wrong magic is a real
// error — the file is not a journal.
//
// Decode returns the *raw* record sequence, including records of
// rounds that never committed; use Commit to fold them into durable
// state.
func Decode(data []byte) ([]*Record, error) {
	if len(data) < magicLen || [magicLen]byte(data[:magicLen]) != magic {
		return nil, ErrBadMagic
	}
	data = data[magicLen:]
	var recs []*Record
	for len(data) >= 8 {
		n := binary.BigEndian.Uint32(data[0:4])
		sum := binary.BigEndian.Uint32(data[4:8])
		if n > maxRecord || uint64(n) > uint64(len(data)-8) {
			break // torn tail
		}
		payload := data[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn or corrupt tail
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break // torn tail (or garbage that happened to checksum)
		}
		recs = append(recs, rec)
		data = data[8+n:]
	}
	return recs, nil
}

// State is the durable session state reconstructed from a journal:
// everything committed as of the last round close. In-flight (opened
// but unclosed) rounds are discarded — the recovered process re-runs
// them.
type State struct {
	// Session is the fingerprint record, nil if the journal predates
	// one (empty journals recover to a blank state).
	Session *Record
	// Roster holds admission records in selection order.
	Roster []*Record
	// Floor is the highest committed release floor.
	Floor int
	// Quarantined holds permanently excluded devices.
	Quarantined map[string]bool
	// Probation maps a device to the first round it is eligible
	// again. Entries only grow (a later probation extends).
	Probation map[string]int
	// Closes holds the committed round-close and watermark records in
	// commit order; replaying their Update tensors in order
	// reconstructs the model bit-identically.
	Closes []*Record
	// NextRound is the first round (or async version) the recovered
	// process should run: one past the last committed close, or the
	// discarded in-flight round.
	NextRound int
	// Draws counts the cohort-sampling permutations the crashed
	// process consumed: one per committed synchronous close
	// (watermarks burn none). A recovered server fast-forwards its RNG
	// by this many roster-sized draws.
	Draws int
}

// Commit folds a decoded record sequence into durable state,
// implementing the write-ahead discipline: records between a round
// open and its close commit atomically at the close; an open with no
// close (the crashed round — or a round that aborted before opening
// its successor) is discarded entirely.
func Commit(recs []*Record) *State {
	st := &State{
		Quarantined: make(map[string]bool),
		Probation:   make(map[string]int),
	}
	var pending []*Record // records since the in-flight RecRoundOpen
	var pendingRound int
	inFlight := false
	apply := func(rec *Record) {
		switch rec.Type {
		case RecSession:
			if st.Session == nil {
				st.Session = rec
			}
		case RecRoster:
			st.Roster = append(st.Roster, rec)
		case RecFloor:
			if rec.Floor > st.Floor {
				st.Floor = rec.Floor
			}
		case RecQuarantine:
			st.Quarantined[rec.Device] = true
		case RecProbation:
			if rec.Until > st.Probation[rec.Device] {
				st.Probation[rec.Device] = rec.Until
			}
		}
	}
	for _, rec := range recs {
		switch rec.Type {
		case RecRoundOpen:
			// A new open while one is pending discards the pending
			// round: it died without closing (pre-sample failures
			// close nothing and burn no draw).
			pending = pending[:0]
			pendingRound = rec.Round
			inFlight = true
		case RecRoundClose, RecWatermark:
			if inFlight && rec.Round == pendingRound {
				for _, p := range pending {
					apply(p)
				}
				pending = pending[:0]
				inFlight = false
			} else if rec.Type == RecWatermark && !inFlight {
				// Async sessions may watermark without a paired open
				// (version boundaries are fuzzier than rounds);
				// commit directly.
			} else {
				// A close for a round we never saw open — tolerate
				// (the open may predate a truncated head) but do not
				// replay buffered records for it.
				pending = pending[:0]
				inFlight = false
			}
			st.Closes = append(st.Closes, rec)
			if rec.Type == RecRoundClose {
				st.Draws++
			}
			if rec.Round+1 > st.NextRound {
				st.NextRound = rec.Round + 1
			}
		default:
			if inFlight {
				pending = append(pending, rec)
			} else {
				apply(rec)
			}
		}
	}
	return st
}
