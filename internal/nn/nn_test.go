package nn

import (
	"math"
	"math/rand"
	"testing"

	ad "github.com/gradsec/gradsec/internal/autodiff"
	"github.com/gradsec/gradsec/internal/opt"
	"github.com/gradsec/gradsec/internal/tensor"
)

func TestConv2DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 3, 32, 32, 12, 5, 2, 2, 0, ActReLU)
	oh, ow := c.OutHW()
	if oh != 16 || ow != 16 {
		t.Fatalf("OutHW = %dx%d, want 16x16", oh, ow)
	}
	if c.InCells() != 3072 || c.OutCells() != 16*16*12 {
		t.Fatalf("cells = %d/%d", c.InCells(), c.OutCells())
	}
	if c.ParamCount() != 3*5*5*12+12 {
		t.Fatalf("ParamCount = %d", c.ParamCount())
	}
}

func TestConv2DPooledShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(rng, 3, 32, 32, 64, 3, 2, 1, 2, ActReLU)
	oh, ow := c.OutHW()
	if oh != 8 || ow != 8 {
		t.Fatalf("pooled OutHW = %dx%d, want 8x8", oh, ow)
	}
}

func TestConv2DForwardMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 1 channel, 3x3 input, single 2x2 identity-corner filter.
	c := NewConv2D(rng, 1, 3, 3, 1, 2, 1, 0, 0, ActNone)
	c.W.Fill(0)
	c.W.Set(1, 0, 0) // top-left kernel weight only
	c.B.Fill(0.5)
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	out := buildLayer(c, x, 1)
	// Each output = x[top-left of window] + 0.5.
	want := []float64{1.5, 2.5, 4.5, 5.5}
	for i, v := range want {
		if math.Abs(out.Value.Data[i]-v) > 1e-12 {
			t.Fatalf("out[%d] = %v, want %v", i, out.Value.Data[i], v)
		}
	}
	if got := out.Value.Shape; got[0] != 1 || got[1] != 1 || got[2] != 2 || got[3] != 2 {
		t.Fatalf("out shape = %v", got)
	}
}

func buildLayer(l Layer, x *tensor.Tensor, batch int) *ad.Node {
	ps := l.Params()
	vars := make([]*ad.Node, len(ps))
	for i, p := range ps {
		vars[i] = ad.Var(p)
	}
	return l.Build(ad.Var(x), vars, batch)
}

func TestConv2DFeatureMapLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Two filters: filter 0 outputs 0 everywhere, filter 1 outputs 1s
	// (via bias). Channel layout must group filter outputs contiguously.
	c := NewConv2D(rng, 1, 2, 2, 2, 1, 1, 0, 0, ActNone)
	c.W.Fill(0)
	c.B.Set(0, 0, 0)
	c.B.Set(1, 0, 1)
	x := tensor.Full(3, 1, 1, 2, 2)
	out := buildLayer(c, x, 1) // [1, 2, 2, 2]
	for i := 0; i < 4; i++ {
		if out.Value.Data[i] != 0 {
			t.Fatalf("filter-0 plane contains %v at %d", out.Value.Data[i], i)
		}
		if out.Value.Data[4+i] != 1 {
			t.Fatalf("filter-1 plane contains %v at %d", out.Value.Data[4+i], 4+i)
		}
	}
}

func TestDenseForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(rng, 2, 2, ActNone)
	copy(d.W.Data, []float64{1, 2, 3, 4})
	copy(d.B.Data, []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	out := buildLayer(d, x, 1)
	want := []float64{1 + 3 + 10, 2 + 4 + 20}
	for i, v := range want {
		if out.Value.Data[i] != v {
			t.Fatalf("dense out[%d] = %v, want %v", i, out.Value.Data[i], v)
		}
	}
}

// Full-network gradient check against central finite differences on every
// parameter of a tiny conv net.
func TestNetworkGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewTinyConvNet(rng, 1, 6, 6, 3, ActSigmoid)
	x := tensor.Randn(rng, 1, 2, 1, 6, 6)
	y := tensor.New(2, 3)
	y.Set(1, 0, 1)
	y.Set(1, 1, 2)

	_, grads := net.Gradients(x, y)

	const h = 1e-6
	for li, layer := range net.Layers {
		for pi, p := range layer.Params() {
			for ei := 0; ei < len(p.Data); ei += 7 { // sample every 7th element
				orig := p.Data[ei]
				p.Data[ei] = orig + h
				lp, _ := net.Gradients(x, y)
				p.Data[ei] = orig - h
				lm, _ := net.Gradients(x, y)
				p.Data[ei] = orig
				num := (lp - lm) / (2 * h)
				got := grads[li][pi].Data[ei]
				if math.Abs(got-num) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("layer %d param %d elem %d: grad %v, numeric %v", li, pi, ei, got, num)
				}
			}
		}
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewTinyMLP(rng, 4, 16, 3, ActReLU)
	x := tensor.Randn(rng, 1, 12, 4)
	y := tensor.New(12, 3)
	for i := 0; i < 12; i++ {
		y.Set(1, i, i%3)
	}
	o := opt.NewSGD(0.5, 0.9)
	first := net.TrainStep(x, y, o)
	var last float64
	for i := 0; i < 60; i++ {
		last = net.TrainStep(x, y, o)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
	if acc := net.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("accuracy after training = %v, want ≥0.9", acc)
	}
}

func TestConvNetLearnsSeparableTask(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewTinyConvNet(rng, 1, 6, 6, 2, ActReLU)
	// Class 0: bright top-left quadrant; class 1: bright bottom-right.
	n := 16
	x := tensor.New(n, 1, 6, 6)
	y := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		cls := i % 2
		y.Set(1, i, cls)
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				if cls == 0 {
					x.Set(1+0.1*rng.NormFloat64(), i, 0, dy, dx)
				} else {
					x.Set(1+0.1*rng.NormFloat64(), i, 0, 3+dy, 3+dx)
				}
			}
		}
	}
	o := opt.NewAdam(0.01)
	for i := 0; i < 80; i++ {
		net.TrainStep(x, y, o)
	}
	if acc := net.Accuracy(x, y); acc < 0.95 {
		t.Fatalf("conv net failed to learn separable task: acc = %v", acc)
	}
}

func TestStateDictLoadStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewTinyMLP(rng, 3, 5, 2, ActReLU)
	b := NewTinyMLP(rng, 3, 5, 2, ActReLU)
	state := a.StateDict()
	if err := b.LoadState(state); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.FlatParams() {
		if !p.EqualApprox(b.FlatParams()[i], 0) {
			t.Fatalf("param %d mismatch after LoadState", i)
		}
	}
	// LoadState must copy, not alias.
	state[0].Data[0] += 99
	if a.FlatParams()[0].Data[0] == state[0].Data[0] {
		t.Fatal("StateDict must deep-copy")
	}
}

func TestLoadStateShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewTinyMLP(rng, 3, 5, 2, ActReLU)
	b := NewTinyMLP(rng, 3, 6, 2, ActReLU)
	if err := a.LoadState(b.StateDict()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	if err := a.LoadState(nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewTinyConvNet(rng, 1, 6, 6, 2, ActReLU)
	b := a.Clone()
	b.FlatParams()[0].Data[0] += 42
	if a.FlatParams()[0].Data[0] == b.FlatParams()[0].Data[0] {
		t.Fatal("Clone must deep-copy parameters")
	}
	if a.NumLayers() != b.NumLayers() {
		t.Fatal("Clone must preserve structure")
	}
}

func TestActivationString(t *testing.T) {
	for _, a := range []Activation{ActNone, ActReLU, ActSigmoid, ActTanh} {
		if a.String() == "" {
			t.Fatalf("empty String for %d", int(a))
		}
	}
}
