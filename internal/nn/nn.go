// Package nn is a from-scratch deep-neural-network framework — the Go
// counterpart of the Darknet framework that DarkneTZ (and therefore the
// paper's GradSec prototype) builds on. It provides convolutional,
// max-pooling and dense layers over the autodiff engine, categorical
// cross-entropy training, and the exact LeNet-5 and AlexNet architectures
// of the paper's Table 4.
//
// Layer indices are 1-based in the paper ("L1".."Ln"); this package uses
// 0-based slice indices and the repro harness translates.
package nn

import (
	"fmt"

	ad "github.com/gradsec/gradsec/internal/autodiff"
	"github.com/gradsec/gradsec/internal/opt"
	"github.com/gradsec/gradsec/internal/tensor"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations. ActSigmoid exists primarily for the DRIA model
// zoo: the deep-leakage attack needs a twice-differentiable network.
const (
	ActNone Activation = iota + 1
	ActReLU
	ActSigmoid
	ActTanh
)

func (a Activation) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func applyAct(a Activation, x *ad.Node) *ad.Node {
	switch a {
	case ActNone, 0:
		return x
	case ActReLU:
		return ad.ReLU(x)
	case ActSigmoid:
		return ad.Sigmoid(x)
	case ActTanh:
		return ad.Tanh(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
	}
}

// Layer is one trainable (or structural) stage of a network.
type Layer interface {
	// Name returns a short human-readable description.
	Name() string
	// Params returns the layer's parameter tensors (may be empty).
	// Mutating the returned tensors updates the layer.
	Params() []*tensor.Tensor
	// Build appends the layer's computation to the graph. paramVars must
	// contain one Var node per Params() entry, wrapping those tensors.
	Build(x *ad.Node, paramVars []*ad.Node, batch int) *ad.Node
	// InCells returns the number of input activation cells per sample
	// (|A_{l-1}| in the paper's notation).
	InCells() int
	// OutCells returns the number of output activation cells per sample
	// (|Z_l| = |δ_l|).
	OutCells() int
	// ParamCount returns the total number of scalar parameters.
	ParamCount() int
}

// Network is an ordered stack of layers ending in classification logits.
type Network struct {
	Label  string
	Layers []Layer
}

// Forward holds the graph produced by one forward pass.
type Forward struct {
	// Output is the logits node [batch, classes].
	Output *ad.Node
	// Input is the Var node wrapping the input batch.
	Input *ad.Node
	// ParamVars mirrors Network.Layers: one Var per parameter tensor.
	ParamVars [][]*ad.Node
	// LayerOutputs[i] is the output node of layer i.
	LayerOutputs []*ad.Node
}

// NumLayers returns the number of layers.
func (n *Network) NumLayers() int { return len(n.Layers) }

// Params returns all parameter tensors grouped by layer.
func (n *Network) Params() [][]*tensor.Tensor {
	out := make([][]*tensor.Tensor, len(n.Layers))
	for i, l := range n.Layers {
		out[i] = l.Params()
	}
	return out
}

// FlatParams returns all parameter tensors in a single slice ordered by
// layer then position.
func (n *Network) FlatParams() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ParamCount returns the total number of scalar parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.Layers {
		total += l.ParamCount()
	}
	return total
}

// BuildForward constructs the forward graph for input x (any shape whose
// element count matches batch × input cells). The input node is a Var so
// that attacks can differentiate with respect to it.
func (n *Network) BuildForward(x *tensor.Tensor, batch int) *Forward {
	in := ad.Var(x)
	f := &Forward{Input: in, ParamVars: make([][]*ad.Node, len(n.Layers)), LayerOutputs: make([]*ad.Node, len(n.Layers))}
	cur := in
	for i, l := range n.Layers {
		ps := l.Params()
		vars := make([]*ad.Node, len(ps))
		for j, p := range ps {
			vars[j] = ad.Var(p)
		}
		f.ParamVars[i] = vars
		cur = l.Build(cur, vars, batch)
		f.LayerOutputs[i] = cur
	}
	f.Output = cur
	return f
}

// LossGraph builds forward + categorical cross-entropy loss against
// one-hot labels y [batch, classes].
func (n *Network) LossGraph(x, y *tensor.Tensor) (*ad.Node, *Forward) {
	batch := y.Shape[0]
	f := n.BuildForward(x, batch)
	return ad.SoftmaxCrossEntropy(f.Output, y), f
}

// Gradients runs a full forward/backward pass and returns the loss and
// per-layer parameter gradients (dW_l in the paper's notation).
func (n *Network) Gradients(x, y *tensor.Tensor) (float64, [][]*tensor.Tensor) {
	loss, f := n.LossGraph(x, y)
	var flat []*ad.Node
	for _, vars := range f.ParamVars {
		flat = append(flat, vars...)
	}
	gs := ad.GradValues(loss, flat)
	out := make([][]*tensor.Tensor, len(n.Layers))
	k := 0
	for i, vars := range f.ParamVars {
		out[i] = gs[k : k+len(vars)]
		k += len(vars)
	}
	return ad.Scalar(loss), out
}

// TrainStep performs one optimizer step on batch (x, y) and returns the
// pre-step loss.
func (n *Network) TrainStep(x, y *tensor.Tensor, o opt.Optimizer) float64 {
	loss, grads := n.Gradients(x, y)
	var flatP, flatG []*tensor.Tensor
	for i := range grads {
		flatP = append(flatP, n.Layers[i].Params()...)
		flatG = append(flatG, grads[i]...)
	}
	o.Step(flatP, flatG)
	return loss
}

// Predict returns the logits for x with the given batch size.
func (n *Network) Predict(x *tensor.Tensor, batch int) *tensor.Tensor {
	return n.BuildForward(x, batch).Output.Value
}

// Accuracy returns top-1 accuracy of the network on (x, y).
func (n *Network) Accuracy(x, y *tensor.Tensor) float64 {
	batch := y.Shape[0]
	logits := n.Predict(x, batch)
	pred := tensor.ArgMaxRows(logits)
	truth := tensor.ArgMaxRows(y)
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// StateDict returns deep copies of all parameters, ordered like FlatParams.
func (n *Network) StateDict() []*tensor.Tensor {
	ps := n.FlatParams()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}

// LoadState copies the given tensors (ordered like FlatParams) into the
// network's parameters. It returns an error on any shape mismatch.
func (n *Network) LoadState(state []*tensor.Tensor) error {
	ps := n.FlatParams()
	if len(state) != len(ps) {
		return fmt.Errorf("nn: state has %d tensors, network has %d", len(state), len(ps))
	}
	for i, p := range ps {
		if !p.SameShape(state[i]) {
			return fmt.Errorf("nn: state tensor %d shape %v does not match parameter shape %v", i, state[i].Shape, p.Shape)
		}
	}
	for i, p := range ps {
		copy(p.Data, state[i].Data)
	}
	return nil
}

// Clone returns a structurally identical network with deep-copied weights.
// Layer configuration structs are shared metadata copies.
func (n *Network) Clone() *Network {
	c := &Network{Label: n.Label, Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		c.Layers[i] = cloneLayer(l)
	}
	return c
}
