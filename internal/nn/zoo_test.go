package nn

import (
	"math/rand"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

// Table 4 of the paper, transcribed: per-layer input/output sizes.
func TestLeNet5MatchesTable4(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewLeNet5(rng, ActReLU)
	if net.NumLayers() != 5 {
		t.Fatalf("LeNet-5 layers = %d, want 5", net.NumLayers())
	}
	wantIn := []int{32 * 32 * 3, 16 * 16 * 12, 8 * 8 * 12, 8 * 8 * 12, 768}
	wantOut := []int{16 * 16 * 12, 8 * 8 * 12, 8 * 8 * 12, 8 * 8 * 12, 100}
	for i, l := range net.Layers {
		if l.InCells() != wantIn[i] {
			t.Errorf("L%d InCells = %d, want %d", i+1, l.InCells(), wantIn[i])
		}
		if l.OutCells() != wantOut[i] {
			t.Errorf("L%d OutCells = %d, want %d", i+1, l.OutCells(), wantOut[i])
		}
	}
	// The paper highlights L5's 76.8K weight parameters.
	if w := net.Layers[4].(*Dense).W.Size(); w != 76800 {
		t.Fatalf("L5 weights = %d, want 76800", w)
	}
}

func TestAlexNetMatchesTable4(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewAlexNet(rng)
	if net.NumLayers() != 8 {
		t.Fatalf("AlexNet layers = %d, want 8", net.NumLayers())
	}
	wantOut := []int{
		8 * 8 * 64,
		4 * 4 * 192,
		4 * 4 * 384,
		4 * 4 * 256,
		2 * 2 * 256,
		4096,
		4096,
		100,
	}
	for i, l := range net.Layers {
		if l.OutCells() != wantOut[i] {
			t.Errorf("L%d OutCells = %d, want %d", i+1, l.OutCells(), wantOut[i])
		}
	}
	if in := net.Layers[5].InCells(); in != 1024 {
		t.Fatalf("L6 input = %d, want 1024", in)
	}
}

func TestLeNet5ForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewLeNet5(rng, ActReLU)
	x := tensor.Randn(rng, 0.5, 2, 3, 32, 32)
	out := net.Predict(x, 2)
	if out.Shape[0] != 2 || out.Shape[1] != 100 {
		t.Fatalf("LeNet-5 output shape = %v, want [2 100]", out.Shape)
	}
}

func TestAlexNetSForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewAlexNetS(rng, 16, ActReLU)
	if net.NumLayers() != 8 {
		t.Fatalf("AlexNet-S layers = %d, want 8", net.NumLayers())
	}
	x := tensor.Randn(rng, 0.5, 1, 3, 32, 32)
	out := net.Predict(x, 1)
	if out.Shape[1] != 100 {
		t.Fatalf("AlexNet-S output shape = %v", out.Shape)
	}
}

func TestAlexNetSScaleOneEqualsAlexNetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	full := NewAlexNet(rng)
	s1 := NewAlexNetS(rng, 1, ActReLU)
	for i := range full.Layers {
		if full.Layers[i].ParamCount() != s1.Layers[i].ParamCount() {
			t.Fatalf("L%d param count %d != %d", i+1, full.Layers[i].ParamCount(), s1.Layers[i].ParamCount())
		}
	}
}

func TestAlexNetParamCountIsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewAlexNet(rng)
	// Sanity: AlexNet per Table 4 has >20M params (dominated by L7's
	// 4096×4096 and L6's 1024×4096).
	if pc := net.ParamCount(); pc < 20_000_000 {
		t.Fatalf("AlexNet ParamCount = %d, want >20M", pc)
	}
}

func TestZooDeterministicWithSeed(t *testing.T) {
	a := NewLeNet5(rand.New(rand.NewSource(42)), ActReLU)
	b := NewLeNet5(rand.New(rand.NewSource(42)), ActReLU)
	for i, p := range a.FlatParams() {
		if !p.EqualApprox(b.FlatParams()[i], 0) {
			t.Fatal("same seed must produce identical weights")
		}
	}
}
