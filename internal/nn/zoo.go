package nn

import (
	"math/rand"
)

// NumClasses is the classifier width used throughout the paper (CIFAR-100).
const NumClasses = 100

// NewLeNet5 builds the LeNet-5 variant of the paper's Table 4:
//
//	L1 Conv2D 12 filters 5×5 stride 2          32×32×3 → 16×16×12
//	L2 Conv2D 12 filters 5×5 stride 2 pad 2    16×16×12 → 8×8×12
//	L3 Conv2D 12 filters 5×5 stride 1 pad 2     8×8×12 → 8×8×12
//	L4 Conv2D 12 filters 5×5 stride 1 pad 2     8×8×12 → 8×8×12
//	L5 Dense 768 → 100
//
// Note: Table 4 lists L1 with padding 0, which contradicts its own output
// size (a 5×5/2 window over 32×32 without padding yields 14×14); padding 2
// reproduces the published 16×16×12, so that is what we build.
//
// act selects the hidden activation; the DRIA experiments use ActSigmoid
// (the DLG reference implementation also replaces ReLU with a smooth
// activation), everything else uses ActReLU.
func NewLeNet5(rng *rand.Rand, act Activation) *Network {
	return &Network{
		Label: "LeNet-5",
		Layers: []Layer{
			NewConv2D(rng, 3, 32, 32, 12, 5, 2, 2, 0, act),
			NewConv2D(rng, 12, 16, 16, 12, 5, 2, 2, 0, act),
			NewConv2D(rng, 12, 8, 8, 12, 5, 1, 2, 0, act),
			NewConv2D(rng, 12, 8, 8, 12, 5, 1, 2, 0, act),
			NewDense(rng, 768, NumClasses, ActNone),
		},
	}
}

// NewAlexNet builds the AlexNet variant of the paper's Table 4:
//
//	L1 Conv2D+MP2  64 filters 3×3/2/1   32×32×3 → 8×8×64
//	L2 Conv2D+MP2 192 filters 3×3/1/1   8×8×64 → 4×4×192
//	L3 Conv2D     384 filters 3×3/1/1   4×4×192 → 4×4×384
//	L4 Conv2D     256 filters 3×3/1/1   4×4×384 → 4×4×256
//	L5 Conv2D+MP2 256 filters 3×3/1/1   4×4×256 → 2×2×256
//	L6 Dense 1024 → 4096
//	L7 Dense 4096 → 4096
//	L8 Dense 4096 → 100
func NewAlexNet(rng *rand.Rand) *Network {
	return &Network{
		Label: "AlexNet",
		Layers: []Layer{
			NewConv2D(rng, 3, 32, 32, 64, 3, 2, 1, 2, ActReLU),
			NewConv2D(rng, 64, 8, 8, 192, 3, 1, 1, 2, ActReLU),
			NewConv2D(rng, 192, 4, 4, 384, 3, 1, 1, 0, ActReLU),
			NewConv2D(rng, 384, 4, 4, 256, 3, 1, 1, 0, ActReLU),
			NewConv2D(rng, 256, 4, 4, 256, 3, 1, 1, 2, ActReLU),
			NewDense(rng, 1024, 4096, ActReLU),
			NewDense(rng, 4096, 4096, ActReLU),
			NewDense(rng, 4096, NumClasses, ActNone),
		},
	}
}

// NewAlexNetS builds a channel-scaled AlexNet with the same depth and
// layer structure but 1/scale of the channels/widths. The full AlexNet
// (≈21 M parameters) is out of budget for the double-backprop DRIA
// experiment on commodity hardware; the scaled variant preserves the
// property the paper measures — which layers an attacker needs, and
// which protections defeat it. scale must be ≥ 1; the paper architecture
// corresponds to scale == 1.
func NewAlexNetS(rng *rand.Rand, scale int, act Activation) *Network {
	if scale < 1 {
		scale = 1
	}
	s := func(v int) int {
		if v/scale < 4 {
			return 4
		}
		return v / scale
	}
	f5 := s(256)
	return &Network{
		Label: "AlexNet-S",
		Layers: []Layer{
			NewConv2D(rng, 3, 32, 32, s(64), 3, 2, 1, 2, act),
			NewConv2D(rng, s(64), 8, 8, s(192), 3, 1, 1, 2, act),
			NewConv2D(rng, s(192), 4, 4, s(384), 3, 1, 1, 0, act),
			NewConv2D(rng, s(384), 4, 4, s(256), 3, 1, 1, 0, act),
			NewConv2D(rng, s(256), 4, 4, f5, 3, 1, 1, 2, act),
			NewDense(rng, 4*f5, s(4096), act),
			NewDense(rng, s(4096), s(4096), act),
			NewDense(rng, s(4096), NumClasses, ActNone),
		},
	}
}

// NewLeNet5Mini builds a 5-layer miniature of the paper's LeNet-5 (same
// depth and layer types, 16×16×1 inputs, 6 filters, 10 classes) for the
// security experiments, where full-scale CIFAR training is out of a
// laptop-run budget. The layer roles (4 conv + 1 dense head) — what the
// protection experiments vary — are preserved.
func NewLeNet5Mini(rng *rand.Rand, act Activation) *Network {
	return &Network{
		Label: "LeNet-5-mini",
		Layers: []Layer{
			NewConv2D(rng, 1, 16, 16, 6, 5, 2, 2, 0, act),
			NewConv2D(rng, 6, 8, 8, 6, 5, 2, 2, 0, act),
			NewConv2D(rng, 6, 4, 4, 6, 5, 1, 2, 0, act),
			NewConv2D(rng, 6, 4, 4, 6, 5, 1, 2, 0, act),
			NewDense(rng, 6*4*4, 10, ActNone),
		},
	}
}

// NewTinyMLP builds a small fully connected classifier, used by tests and
// fast examples.
func NewTinyMLP(rng *rand.Rand, in, hidden, classes int, act Activation) *Network {
	return &Network{
		Label: "TinyMLP",
		Layers: []Layer{
			NewDense(rng, in, hidden, act),
			NewDense(rng, hidden, classes, ActNone),
		},
	}
}

// NewTinyConvNet builds a small conv→conv→dense classifier for tests and
// fast attack demonstrations (structure mirrors LeNet-5 at reduced size).
func NewTinyConvNet(rng *rand.Rand, c, h, w, classes int, act Activation) *Network {
	l1 := NewConv2D(rng, c, h, w, 4, 3, 2, 1, 0, act)
	o1h, o1w := l1.OutHW()
	l2 := NewConv2D(rng, 4, o1h, o1w, 6, 3, 1, 1, 0, act)
	o2h, o2w := l2.OutHW()
	return &Network{
		Label: "TinyConvNet",
		Layers: []Layer{
			l1,
			l2,
			NewDense(rng, 6*o2h*o2w, classes, ActNone),
		},
	}
}
