package nn

import (
	"fmt"
	"math"
	"math/rand"

	ad "github.com/gradsec/gradsec/internal/autodiff"
	"github.com/gradsec/gradsec/internal/tensor"
)

// Conv2D is a 2-D convolutional layer (with optional fused max-pooling,
// matching the paper's Table 4 where e.g. AlexNet's "Conv2D +MP2" counts
// as a single layer L1).
type Conv2D struct {
	// Input geometry (per sample).
	InC, InH, InW int
	// Filters is the number of output channels.
	Filters int
	// KH, KW, Stride, Pad define the convolution window.
	KH, KW, Stride, Pad int
	// Pool applies Pool×Pool max-pooling (stride Pool) after the
	// activation when > 0.
	Pool int
	// Act is the nonlinearity applied after the bias.
	Act Activation

	// W has shape [InC*KH*KW, Filters] so the im2col matmul is direct.
	W *tensor.Tensor
	// B has shape [1, Filters].
	B *tensor.Tensor
}

// NewConv2D creates a convolutional layer with He-scaled Gaussian weights.
func NewConv2D(rng *rand.Rand, inC, inH, inW, filters, k, stride, pad, pool int, act Activation) *Conv2D {
	fanIn := inC * k * k
	std := math.Sqrt(2.0 / float64(fanIn))
	return &Conv2D{
		InC: inC, InH: inH, InW: inW,
		Filters: filters, KH: k, KW: k, Stride: stride, Pad: pad, Pool: pool, Act: act,
		W: tensor.Randn(rng, std, fanIn, filters),
		B: tensor.New(1, filters),
	}
}

// ConvOutHW returns the spatial output size of the convolution itself
// (before pooling).
func (c *Conv2D) ConvOutHW() (int, int) {
	g := tensor.NewConvGeom(1, c.InC, c.InH, c.InW, c.KH, c.KW, c.Stride, c.Pad)
	return g.OutH, g.OutW
}

// OutHW returns the final spatial output size (after pooling, if any).
func (c *Conv2D) OutHW() (int, int) {
	oh, ow := c.ConvOutHW()
	if c.Pool > 0 {
		oh /= c.Pool
		ow /= c.Pool
	}
	return oh, ow
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	pool := ""
	if c.Pool > 0 {
		pool = fmt.Sprintf("+MP%d", c.Pool)
	}
	return fmt.Sprintf("Conv2D%s(%d->%d %dx%d/%d/%d)", pool, c.InC, c.Filters, c.KH, c.KW, c.Stride, c.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// ParamCount implements Layer.
func (c *Conv2D) ParamCount() int { return c.W.Size() + c.B.Size() }

// InCells implements Layer.
func (c *Conv2D) InCells() int { return c.InC * c.InH * c.InW }

// OutCells implements Layer.
func (c *Conv2D) OutCells() int {
	oh, ow := c.OutHW()
	return c.Filters * oh * ow
}

// Build implements Layer. Input may arrive in any shape with
// batch×InCells elements; output has shape [batch, Filters, outH, outW].
func (c *Conv2D) Build(x *ad.Node, paramVars []*ad.Node, batch int) *ad.Node {
	w, b := paramVars[0], paramVars[1]
	x4 := ad.Reshape(x, batch, c.InC, c.InH, c.InW)
	g := tensor.NewConvGeom(batch, c.InC, c.InH, c.InW, c.KH, c.KW, c.Stride, c.Pad)
	cols := ad.Im2Col(x4, g)                       // [batch*OH*OW, InC*KH*KW]
	z := ad.AddRowBias(ad.MatMul(cols, w), b)      // [batch*OH*OW, F]
	fm := colsToFeatureMap(z, batch, c.Filters, g) // [batch, F, OH, OW]
	out := applyAct(c.Act, fm)
	if c.Pool > 0 {
		out = ad.MaxPool(out, c.Pool, c.Pool)
	}
	return out
}

// colsToFeatureMap permutes [batch*OH*OW, F] (row index = (n,oy,ox)) into
// [batch, F, OH, OW] via a constant gather.
func colsToFeatureMap(z *ad.Node, batch, filters int, g tensor.ConvGeom) *ad.Node {
	oh, ow := g.OutH, g.OutW
	idx := make([]int, batch*filters*oh*ow)
	i := 0
	for n := 0; n < batch; n++ {
		for f := 0; f < filters; f++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					row := (n*oh+y)*ow + x
					idx[i] = row*filters + f
					i++
				}
			}
		}
	}
	return ad.Gather(z, idx, batch, filters, oh, ow)
}

// Dense is a fully connected layer.
type Dense struct {
	In, Out int
	Act     Activation

	// W has shape [In, Out]; B has shape [1, Out].
	W *tensor.Tensor
	B *tensor.Tensor
}

// NewDense creates a dense layer with Xavier-scaled Gaussian weights.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Dense{In: in, Out: out, Act: act,
		W: tensor.Randn(rng, std, in, out),
		B: tensor.New(1, out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d->%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// ParamCount implements Layer.
func (d *Dense) ParamCount() int { return d.W.Size() + d.B.Size() }

// InCells implements Layer.
func (d *Dense) InCells() int { return d.In }

// OutCells implements Layer.
func (d *Dense) OutCells() int { return d.Out }

// Build implements Layer. Input of any shape with batch×In elements is
// flattened; output is [batch, Out].
func (d *Dense) Build(x *ad.Node, paramVars []*ad.Node, batch int) *ad.Node {
	w, b := paramVars[0], paramVars[1]
	x2 := ad.Reshape(x, batch, d.In)
	return applyAct(d.Act, ad.AddRowBias(ad.MatMul(x2, w), b))
}

// Interface compliance checks.
var (
	_ Layer = (*Conv2D)(nil)
	_ Layer = (*Dense)(nil)
)

func cloneLayer(l Layer) Layer {
	switch t := l.(type) {
	case *Conv2D:
		c := *t
		c.W = t.W.Clone()
		c.B = t.B.Clone()
		return &c
	case *Dense:
		c := *t
		c.W = t.W.Clone()
		c.B = t.B.Clone()
		return &c
	default:
		panic(fmt.Sprintf("nn: cannot clone layer of type %T", l))
	}
}
