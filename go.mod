module github.com/gradsec/gradsec

go 1.21
