package gradsec_test

// BenchmarkRecover quantifies the crash-durability trade the round
// journal buys: resuming a session from its journal (decode + replay +
// RNG fast-forward, no network, no attestation) versus the work a
// journal-less restart cannot avoid — re-attesting every device in the
// fleet. EXPERIMENTS.md records a reference run.

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// benchTA is the minimal trusted application installed on the
// re-attestation fleet: attestation measures UUID and version, so the
// body can be empty.
type benchTA struct{ uuid tz.UUID }

func (t *benchTA) UUID() tz.UUID                                   { return t.uuid }
func (t *benchTA) Version() string                                 { return "bench-1" }
func (t *benchTA) OpenSession(*tz.TAEnv) (any, error)              { return nil, nil }
func (t *benchTA) Invoke(*tz.TAEnv, any, uint32, any) (any, error) { return nil, nil }
func (t *benchTA) CloseSession(*tz.TAEnv, any)                     {}

// writeRecoverJournal synthesises a committed journal: an n-device
// roster and `committed` closed rounds, each carrying a LeNet-5-sized
// model update — the shape of the log a crashed session of that fleet
// leaves behind.
func writeRecoverJournal(b *testing.B, path string, n, committed, totalRounds int) {
	b.Helper()
	j, err := journal.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	must := func(rec *journal.Record) {
		if err := j.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	must(&journal.Record{Type: journal.RecSession, Seed: 1, Rounds: totalRounds})
	for i := 0; i < n; i++ {
		must(&journal.Record{
			Type:   journal.RecRoster,
			Device: fmt.Sprintf("dev-%05d", i),
			Codec:  uint8(wire.CodecF64),
			Cap:    uint8(wire.CodecF64),
		})
	}
	model := benchModel()
	update := make([]*tensor.Tensor, len(model))
	for i, t := range model {
		update[i] = tensor.Full(1.0/256, t.Shape...)
	}
	for r := 0; r < committed; r++ {
		must(&journal.Record{Type: journal.RecRoundOpen, Round: r})
		must(&journal.Record{
			Type: journal.RecRoundClose, Round: r, OK: true,
			Stats:  journal.Stats{Round: r, Sampled: n, Responded: n, WeightTotal: float64(n)},
			Update: update,
		})
	}
	if err := j.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecover: "replay" is the journalled path — rebuild a crashed
// server's state bit-identically from its log; "reattest" is the floor
// a journal-less restart pays instead: one fresh quote verification per
// fleet device before any round can run. EXPERIMENTS.md records the
// ratio at 256 and 1024 clients.
func BenchmarkRecover(b *testing.B) {
	const committed, totalRounds = 5, 6
	for _, clients := range []int{256, 1024} {
		if testing.Short() && clients > 256 {
			continue // CI bench smoke: smallest case only
		}
		b.Run(fmt.Sprintf("replay/clients=%d", clients), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.journal")
			writeRecoverJournal(b, path, clients, committed, totalRounds)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				state := benchModel()
				b.StartTimer()
				srv, err := fl.Recover(path, state, fl.ServerConfig{Rounds: totalRounds, SampleSeed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if srv.NextRound() != committed {
					b.Fatalf("recovered to round %d, want %d", srv.NextRound(), committed)
				}
			}
		})
		b.Run(fmt.Sprintf("reattest/clients=%d", clients), func(b *testing.B) {
			uuid := tz.NameUUID("bench-trainer-ta")
			v := tz.NewVerifier()
			devs := make([]*tz.Device, clients)
			for i := range devs {
				devs[i] = tz.NewDevice(fmt.Sprintf("dev-%05d", i))
				if err := devs[i].Install(&benchTA{uuid: uuid}); err != nil {
					b.Fatal(err)
				}
				v.RegisterDevice(devs[i].Identity().ID(), devs[i].Identity().RootKey())
				m, err := devs[i].Measurement(uuid)
				if err != nil {
					b.Fatal(err)
				}
				v.AllowMeasurement(m)
			}
			nonce := []byte("recover-bench-nonce")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, d := range devs {
					q, err := d.Attest(uuid, nonce)
					if err != nil {
						b.Fatal(err)
					}
					if err := v.Verify(q, nonce); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
